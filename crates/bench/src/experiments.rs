//! The experiment implementations: one function per table/figure of the
//! paper's Section 4. Each prints a paper-style table, cross-checks that
//! every miner agreed on every run, and persists raw measurements as JSON.

use crate::report::{nrr_table, persist, runtime_table, trim_float};
use crate::runner::{assert_agreement, measure, measure_with_threads, Measurement};
use crate::workloads::{
    fig10_db, fig8_db, fig8_sizes, fig9_db, fig9_thresholds, theta_grid, Scale, WorkloadCache,
};
use disc_algo::{nrr_by_level, DiscAll, DynamicDiscAll, ParallelDiscAll};
use disc_baselines::{PrefixSpan, PseudoPrefixSpan};
use disc_core::{MinSupport, MiningResult, SequenceDatabase, SequentialMiner};

const SEED: u64 = 20040330; // ICDE 2004 conference dates — an arbitrary fixed seed.

fn fig8_miners() -> Vec<Box<dyn SequentialMiner>> {
    vec![
        Box::new(DiscAll::default()),
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
    ]
}

fn fig10_miners() -> Vec<Box<dyn SequentialMiner>> {
    vec![
        Box::new(DiscAll::default()),
        Box::new(DynamicDiscAll::default()),
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
    ]
}

fn run_sweep(
    db: &SequenceDatabase,
    miners: &[Box<dyn SequentialMiner>],
    min_support: MinSupport,
    param: f64,
    measurements: &mut Vec<Measurement>,
) -> MiningResult {
    let mut reference: Option<MiningResult> = None;
    for miner in miners {
        let (m, result) = measure(miner.as_ref(), db, min_support, param);
        eprintln!(
            "    {:<18} param={:<8} {:>8.3}s  {} patterns (max length {})",
            m.miner,
            trim_float(param),
            m.seconds,
            m.patterns,
            m.max_length
        );
        measurements.push(m);
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_agreement(miner.name(), &result, r),
        }
    }
    reference.expect("at least one miner")
}

/// **Figure 8**: runtime vs number of customers (Table 11 workload,
/// minimum support 0.0025) for DISC-all, PrefixSpan, Pseudo.
pub fn fig8(scale: Scale) {
    println!("## Figure 8 — runtime vs database size (minsup 0.0025)\n");
    let cache = WorkloadCache::new();
    let miners = fig8_miners();
    let mut measurements = Vec::new();
    for ncust in fig8_sizes(scale) {
        let db = cache.get(&fig8_db(ncust, SEED));
        run_sweep(&db, &miners, MinSupport::Fraction(0.0025), ncust as f64, &mut measurements);
    }
    let names: Vec<String> = miners.iter().map(|m| m.name().to_string()).collect();
    let params: Vec<f64> = fig8_sizes(scale).iter().map(|&n| n as f64).collect();
    println!("{}", runtime_table("customers", &params, &names, &measurements));
    let _ = persist("fig8", &measurements);
}

/// One sweep row for the NRR tables: the sweep parameter and its per-level
/// average NRRs.
type NrrRow = (f64, Vec<Option<f64>>);

/// Runs the Figure 9 sweep once and returns its measurements (Tables 12 and
/// 13 reuse them).
fn fig9_measurements(scale: Scale) -> (Vec<Measurement>, Vec<NrrRow>) {
    let db = fig9_db(scale, SEED).generate();
    let miners = fig8_miners();
    let mut measurements = Vec::new();
    let mut nrr_rows = Vec::new();
    for threshold in fig9_thresholds(scale) {
        let reference =
            run_sweep(&db, &miners, MinSupport::Fraction(threshold), threshold, &mut measurements);
        nrr_rows.push((threshold, nrr_by_level(&reference, &db)));
    }
    (measurements, nrr_rows)
}

/// **Figure 9**: runtime vs minimum support threshold (10K customers,
/// slen = tlen = seq.patlen = 8).
pub fn fig9(scale: Scale) {
    let (measurements, _) = fig9_measurements(scale);
    report_fig9(scale, &measurements);
}

fn report_fig9(scale: Scale, measurements: &[Measurement]) {
    println!("## Figure 9 — runtime vs minimum support (10K, slen=tlen=patlen=8)\n");
    let names: Vec<String> = fig8_miners().iter().map(|m| m.name().to_string()).collect();
    let params = fig9_thresholds(scale);
    println!("{}", runtime_table("minsup", &params, &names, measurements));
    let _ = persist("fig9", &measurements);
}

/// **Table 12**: average NRR per partition level, per minimum support, on
/// the Figure 9 database.
pub fn table12(scale: Scale) {
    println!("## Table 12 — average NRR per level vs minimum support\n");
    let db = fig9_db(scale, SEED).generate();
    let miner = DiscAll::default();
    let mut rows = Vec::new();
    for threshold in fig9_thresholds(scale) {
        let result = miner.mine(&db, MinSupport::Fraction(threshold));
        eprintln!("    minsup {:<8} {} patterns", trim_float(threshold), result.len());
        rows.push((threshold, nrr_by_level(&result, &db)));
    }
    println!("{}", nrr_table("minsup", &rows));
    let _ = persist("table12", &rows);
}

/// **Table 13**: the Pseudo / DISC-all runtime ratio per minimum support —
/// the same sweep as Figure 9, reported as the paper's ratio column.
pub fn table13(scale: Scale) {
    let (measurements, _) = fig9_measurements(scale);
    report_table13(scale, &measurements);
}

fn report_table13(scale: Scale, measurements: &[Measurement]) {
    println!("## Table 13 — Pseudo vs DISC-all runtime ratio\n");
    println!("| minsup | Pseudo (s) | DISC-all (s) | Pseudo/DISC-all |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    for threshold in fig9_thresholds(scale) {
        let find = |name: &str| {
            measurements
                .iter()
                .find(|m| m.miner == name && (m.param - threshold).abs() < 1e-12)
                .map(|m| m.seconds)
        };
        if let (Some(pseudo), Some(disc)) = (find("Pseudo"), find("DISC-all")) {
            println!(
                "| {} | {:.3} | {:.3} | {:.3} |",
                trim_float(threshold),
                pseudo,
                disc,
                pseudo / disc
            );
            rows.push((threshold, pseudo, disc, pseudo / disc));
        }
    }
    println!();
    let _ = persist("table13", &rows);
}

/// **Table 14**: average NRR per level vs θ (average transactions per
/// customer), 50K customers, minsup 0.005.
pub fn table14(scale: Scale) {
    println!("## Table 14 — average NRR per level vs θ (minsup 0.005)\n");
    let cache = WorkloadCache::new();
    let miner = DiscAll::default();
    let mut rows = Vec::new();
    for theta in theta_grid(scale) {
        let db = cache.get(&fig10_db(theta, scale, SEED));
        let result = miner.mine(&db, MinSupport::Fraction(0.005));
        eprintln!("    θ = {:<4} {} patterns", theta, result.len());
        rows.push((theta, nrr_by_level(&result, &db)));
    }
    println!("{}", nrr_table("θ", &rows));
    let _ = persist("table14", &rows);
}

/// **Figure 10**: runtime vs θ for DISC-all, Dynamic DISC-all, PrefixSpan
/// and Pseudo (minsup 0.005).
pub fn fig10(scale: Scale) {
    println!("## Figure 10 — runtime vs θ (minsup 0.005)\n");
    let cache = WorkloadCache::new();
    let miners = fig10_miners();
    let mut measurements = Vec::new();
    for theta in theta_grid(scale) {
        let db = cache.get(&fig10_db(theta, scale, SEED));
        run_sweep(&db, &miners, MinSupport::Fraction(0.005), theta, &mut measurements);
    }
    let names: Vec<String> = miners.iter().map(|m| m.name().to_string()).collect();
    println!("{}", runtime_table("θ", &theta_grid(scale), &names, &measurements));
    let _ = persist("fig10", &measurements);
}

/// Thread counts swept by the [`parallel`] experiment.
const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// **Parallel scaling** (not in the paper): sequential DISC-all vs
/// `ParallelDiscAll` at 1/2/4/8 threads on the Figure 8 workload's largest
/// database for the scale. Every parallel run is checked bit-identical to
/// the sequential reference — the sweep doubles as a determinism gate —
/// and the speedup column reports sequential-seconds / parallel-seconds.
pub fn parallel(scale: Scale) {
    println!("## Parallel scaling — sharded DISC-all vs sequential (minsup 0.0025)\n");
    let ncust = *fig8_sizes(scale).last().expect("fig8_sizes is non-empty");
    let cache = WorkloadCache::new();
    let db = cache.get(&fig8_db(ncust, SEED));
    let minsup = MinSupport::Fraction(0.0025);

    let mut measurements = Vec::new();
    let (baseline, reference) = measure(&DiscAll::default(), &db, minsup, ncust as f64);
    eprintln!(
        "    {:<22} {:>8.3}s  {} patterns (max length {})",
        baseline.miner, baseline.seconds, baseline.patterns, baseline.max_length
    );
    println!("| threads | seconds | speedup | patterns |");
    println!("|---|---|---|---|");
    println!("| seq | {:.3} | 1.000 | {} |", baseline.seconds, baseline.patterns);
    let sequential_seconds = baseline.seconds;
    measurements.push(baseline);
    for threads in PARALLEL_THREADS {
        let miner = ParallelDiscAll::with_threads(threads);
        let (m, result) = measure_with_threads(&miner, &db, minsup, ncust as f64, threads);
        assert_agreement(miner.name(), &result, &reference);
        eprintln!(
            "    {:<22} {:>8.3}s  {} patterns (max length {})",
            m.miner, m.seconds, m.patterns, m.max_length
        );
        println!(
            "| {} | {:.3} | {:.3} | {} |",
            threads,
            m.seconds,
            sequential_seconds / m.seconds.max(1e-9),
            m.patterns
        );
        measurements.push(m);
    }
    println!();
    let _ = persist("parallel", &measurements);
}

/// Runs every experiment at the given scale. The Figure 9 sweep is shared
/// with Tables 12 and 13 so the most expensive workload runs once.
pub fn all(scale: Scale) {
    fig8(scale);
    let (measurements, nrr_rows) = fig9_measurements(scale);
    report_fig9(scale, &measurements);
    println!("## Table 12 — average NRR per level vs minimum support\n");
    println!("{}", nrr_table("minsup", &nrr_rows));
    let _ = persist("table12", &nrr_rows);
    report_table13(scale, &measurements);
    table14(scale);
    fig10(scale);
    parallel(scale);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::MiningResult;

    /// Full smoke-scale harness run; meaningful only in release builds
    /// (minutes in debug), so it is opt-in:
    /// `cargo test --release -p disc-bench -- --ignored`.
    #[test]
    #[ignore = "slow in debug builds; run with --release -- --ignored"]
    fn smoke_scale_runs() {
        fig8(Scale::Smoke);
        table12(Scale::Smoke);
        fig10(Scale::Smoke);
    }

    /// A minimal end-to-end pass through the sweep machinery: tiny database,
    /// all Figure 8 miners, agreement enforced. The threshold stays high —
    /// dense tiny pools at low δ explode the pattern count.
    #[test]
    fn run_sweep_checks_agreement() {
        let db = fig8_db(60, 1).with_nitems(120).with_pools(40, 80).generate();
        let miners = fig8_miners();
        let mut measurements = Vec::new();
        let reference: MiningResult =
            run_sweep(&db, &miners, MinSupport::Fraction(0.2), 60.0, &mut measurements);
        assert!(!reference.is_empty());
        assert_eq!(measurements.len(), miners.len());
        for m in &measurements {
            assert_eq!(m.patterns, reference.len());
        }
    }
}
