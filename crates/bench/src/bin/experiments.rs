//! Regenerates the DISC paper's evaluation tables and figures.
//!
//! ```text
//! experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]
//! ```
//!
//! Default scale divides the paper's customer counts by ten so a full run
//! finishes on a laptop; `--full` restores the paper's sizes; `--smoke` is
//! the CI-sized sanity run. Raw measurements land in `target/experiments/`.

use disc_bench::workloads::Scale;
use disc_bench::{ckptbench, experiments, flatbench, storebench};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]\n       experiments bench-flat [--smoke] [--check <BENCH_flat.json>]\n       experiments bench-checkpoint\n       experiments bench-store"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Default;
    let mut which: Option<String> = None;
    let mut check: Option<String> = None;
    let mut expect_check_path = false;
    for arg in &args {
        match arg.as_str() {
            _ if expect_check_path => {
                check = Some(arg.to_string());
                expect_check_path = false;
            }
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--default" => scale = Scale::Default,
            "--check" => expect_check_path = true,
            name if !name.starts_with('-') && which.is_none() => {
                which = Some(name.to_string());
            }
            _ => usage(),
        }
    }
    if expect_check_path {
        usage();
    }
    let which = which.unwrap_or_else(|| usage());
    if !matches!(
        which.as_str(),
        "fig8"
            | "fig9"
            | "fig10"
            | "table12"
            | "table13"
            | "table14"
            | "parallel"
            | "all"
            | "bench-flat"
            | "bench-checkpoint"
            | "bench-store"
    ) {
        usage();
    }
    if check.is_some() && which != "bench-flat" {
        usage();
    }

    eprintln!("scale: {scale:?}");
    match which.as_str() {
        "fig8" => experiments::fig8(scale),
        "fig9" => experiments::fig9(scale),
        "fig10" => experiments::fig10(scale),
        "table12" => experiments::table12(scale),
        "table13" => experiments::table13(scale),
        "table14" => experiments::table14(scale),
        "parallel" => experiments::parallel(scale),
        "all" => experiments::all(scale),
        // Informational only — never part of the bench-regression gate; see
        // the module docs for why fsync timings must not gate CI.
        "bench-checkpoint" => {
            ckptbench::run();
        }
        "bench-store" => {
            storebench::run();
        }
        "bench-flat" => match check {
            None => {
                flatbench::run(scale == Scale::Smoke);
            }
            Some(path) => {
                if let Err(msg) = flatbench::check(std::path::Path::new(&path)) {
                    eprintln!("bench-regression FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        },
        _ => usage(),
    }
}
