//! Regenerates the DISC paper's evaluation tables and figures.
//!
//! ```text
//! experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]
//! ```
//!
//! Default scale divides the paper's customer counts by ten so a full run
//! finishes on a laptop; `--full` restores the paper's sizes; `--smoke` is
//! the CI-sized sanity run. Raw measurements land in `target/experiments/`.

use disc_bench::experiments;
use disc_bench::workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Default;
    let mut which: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--default" => scale = Scale::Default,
            name if !name.starts_with('-') && which.is_none() => {
                which = Some(name.to_string());
            }
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());
    if !matches!(
        which.as_str(),
        "fig8" | "fig9" | "fig10" | "table12" | "table13" | "table14" | "parallel" | "all"
    ) {
        usage();
    }

    eprintln!("scale: {scale:?}");
    match which.as_str() {
        "fig8" => experiments::fig8(scale),
        "fig9" => experiments::fig9(scale),
        "fig10" => experiments::fig10(scale),
        "table12" => experiments::table12(scale),
        "table13" => experiments::table13(scale),
        "table14" => experiments::table14(scale),
        "parallel" => experiments::parallel(scale),
        "all" => experiments::all(scale),
        _ => usage(),
    }
}
