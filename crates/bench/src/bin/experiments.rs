//! Regenerates the DISC paper's evaluation tables and figures.
//!
//! ```text
//! experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]
//! ```
//!
//! Default scale divides the paper's customer counts by ten so a full run
//! finishes on a laptop; `--full` restores the paper's sizes; `--smoke` is
//! the CI-sized sanity run. Raw measurements land in `target/experiments/`.

use disc_bench::workloads::Scale;
use disc_bench::{ckptbench, experiments, flatbench, mmapbench, servebench, simdbench, storebench};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig8|fig9|fig10|table12|table13|table14|parallel|all> [--smoke|--full]\n       experiments bench-flat [--smoke] [--check <BENCH_flat.json>]\n       experiments bench-simd [--smoke] [--check <BENCH_simd.json>] [--dump-patterns <path>]\n       experiments bench-mmap [--smoke]\n       experiments bench-checkpoint\n       experiments bench-store\n       experiments bench-serve"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Default;
    let mut which: Option<String> = None;
    let mut check: Option<String> = None;
    let mut dump: Option<String> = None;
    let mut expect_check_path = false;
    let mut expect_dump_path = false;
    for arg in &args {
        match arg.as_str() {
            _ if expect_check_path => {
                check = Some(arg.to_string());
                expect_check_path = false;
            }
            _ if expect_dump_path => {
                dump = Some(arg.to_string());
                expect_dump_path = false;
            }
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--default" => scale = Scale::Default,
            "--check" => expect_check_path = true,
            "--dump-patterns" => expect_dump_path = true,
            name if !name.starts_with('-') && which.is_none() => {
                which = Some(name.to_string());
            }
            _ => usage(),
        }
    }
    if expect_check_path || expect_dump_path {
        usage();
    }
    let which = which.unwrap_or_else(|| usage());
    if !matches!(
        which.as_str(),
        "fig8"
            | "fig9"
            | "fig10"
            | "table12"
            | "table13"
            | "table14"
            | "parallel"
            | "all"
            | "bench-flat"
            | "bench-simd"
            | "bench-mmap"
            | "bench-checkpoint"
            | "bench-store"
            | "bench-serve"
    ) {
        usage();
    }
    if check.is_some() && !matches!(which.as_str(), "bench-flat" | "bench-simd") {
        usage();
    }
    if dump.is_some() && (which != "bench-simd" || check.is_some()) {
        usage();
    }

    eprintln!("scale: {scale:?}");
    match which.as_str() {
        "fig8" => experiments::fig8(scale),
        "fig9" => experiments::fig9(scale),
        "fig10" => experiments::fig10(scale),
        "table12" => experiments::table12(scale),
        "table13" => experiments::table13(scale),
        "table14" => experiments::table14(scale),
        "parallel" => experiments::parallel(scale),
        "all" => experiments::all(scale),
        // Informational only — never part of the bench-regression gate; see
        // the module docs for why fsync timings must not gate CI.
        "bench-checkpoint" => {
            ckptbench::run();
        }
        "bench-store" => {
            storebench::run();
        }
        // Serving latency varies with machine load; informational only,
        // but its internal byte-identity and zero-invocation cache
        // assertions panic on violation.
        "bench-serve" => {
            servebench::run();
        }
        // The ceiling and bit-identity assertions live inside the run —
        // a violation panics, so no separate --check gate is needed.
        "bench-mmap" => {
            mmapbench::run(scale == Scale::Smoke);
        }
        "bench-flat" => match check {
            None => {
                flatbench::run(scale == Scale::Smoke);
            }
            Some(path) => {
                if let Err(msg) = flatbench::check(std::path::Path::new(&path)) {
                    eprintln!("bench-regression FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        },
        "bench-simd" => match (check, dump) {
            (Some(path), _) => {
                if let Err(msg) = simdbench::check(std::path::Path::new(&path)) {
                    eprintln!("simd-differential FAILED: {msg}");
                    std::process::exit(1);
                }
            }
            (None, Some(path)) => {
                if let Err(e) = simdbench::dump_patterns(std::path::Path::new(&path)) {
                    eprintln!("pattern dump FAILED: {e}");
                    std::process::exit(1);
                }
            }
            (None, None) => {
                simdbench::run(scale == Scale::Smoke);
            }
        },
        _ => usage(),
    }
}
