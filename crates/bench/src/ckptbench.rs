//! The checkpoint-overhead benchmark: what durable snapshots cost.
//!
//! Times sequential DISC-all three ways on the flat-bench smoke workload
//! (Table 11 generator, 1 000 customers, minsup 0.0025):
//!
//! | row | configuration |
//! |---|---|
//! | `plain` | no checkpointing (the flat-bench baseline configuration) |
//! | `every-1` | [`Resumable`] persisting **every** partition boundary |
//! | `every-8` | [`Resumable`] persisting every 8th boundary |
//! | `every-64` | [`Resumable`] persisting every 64th boundary |
//!
//! Each row is best-of-[`crate::flatbench::REPEATS`]; the checkpointed rows
//! additionally report the write-side counters (snapshot writes, bytes,
//! time spent in the atomic write protocol) from
//! [`Resumable::last_stats`], so the overhead number can be decomposed
//! into encode/fsync cost vs everything else.
//!
//! This benchmark is **exempt from the bench-regression gate**: fsync
//! latency varies wildly across CI machines and filesystems, so its
//! numbers are informational (persisted to
//! `target/experiments/bench_checkpoint.json`) and never compared against
//! a committed baseline.

use crate::flatbench::REPEATS;
use crate::report::{persist, ToJson};
use crate::runner::{assert_agreement, measure, Measurement};
use crate::workloads::{fig8_db, WorkloadCache};
use disc_algo::{CheckpointStats, DiscAll, Resumable};
use disc_core::{MinSupport, SequentialMiner};
use std::fs;

/// Same fixed seed and threshold as the flat benchmark.
const SEED: u64 = 20040330;
/// Minimum support shared by every row (the Figure 8 threshold).
const MINSUP: f64 = 0.0025;
/// Customers in the workload (the flat-bench `smoke` size).
const NCUST: usize = 1_000;

/// One measured configuration: its timing row plus, for checkpointed
/// configurations, the write-side counters.
#[derive(Debug, Clone)]
pub struct CkptRun {
    /// Row name: `plain`, `every-1`, `every-8`, `every-64`.
    pub name: &'static str,
    /// Best-of-[`REPEATS`] measurement.
    pub measurement: Measurement,
    /// Snapshot write counters (zero for `plain`).
    pub stats: CheckpointStats,
}

impl ToJson for CkptRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"measurement\":{},\"writes\":{},\"boundaries\":{},\"bytes\":{},\"write_seconds\":{}}}",
            self.name.to_string().to_json(),
            self.measurement.to_json(),
            (self.stats.writes as usize).to_json(),
            (self.stats.boundaries as usize).to_json(),
            (self.stats.bytes as usize).to_json(),
            self.stats.write_time.as_secs_f64().to_json(),
        )
    }
}

fn best_of<F: FnMut() -> (Measurement, CheckpointStats)>(
    mut run: F,
) -> (Measurement, CheckpointStats) {
    let mut best = run();
    for _ in 1..REPEATS {
        let m = run();
        if m.0.seconds < best.0.seconds {
            best = m;
        }
    }
    best
}

/// Runs the checkpoint-overhead benchmark and persists the report to
/// `target/experiments/bench_checkpoint.json`.
pub fn run() -> Vec<CkptRun> {
    println!("## Checkpoint overhead benchmark (Table 11 smoke, minsup {MINSUP})\n");
    let cache = WorkloadCache::new();
    let db = cache.get(&fig8_db(NCUST, SEED));
    let minsup = MinSupport::Fraction(MINSUP);

    let mut reference = None;
    let (plain, _) = best_of(|| {
        let (m, result) = measure(&DiscAll::default(), &db, minsup, NCUST as f64);
        reference = Some(result);
        (m, CheckpointStats::default())
    });
    let reference = reference.expect("at least one plain run");

    let dir = std::env::temp_dir().join(format!("disc-ckpt-bench-{}", std::process::id()));
    let mut runs = vec![CkptRun { name: "plain", measurement: plain, stats: Default::default() }];
    for (name, every) in [("every-1", 1u64), ("every-8", 8u64), ("every-64", 64u64)] {
        let miner = Resumable::new(DiscAll::default(), dir.join(name)).with_every(every);
        let (m, stats) = best_of(|| {
            // Each repeat starts cold: a leftover final snapshot would turn
            // the run into a no-op resume and time nothing.
            let _ = fs::remove_dir_all(dir.join(name));
            let (m, result) = measure(&miner, &db, minsup, NCUST as f64);
            assert_agreement(miner.name(), &result, &reference);
            (m, miner.last_stats())
        });
        assert!(!stats.failed, "snapshot writes must succeed in the benchmark");
        runs.push(CkptRun { name, measurement: m, stats });
    }
    let _ = fs::remove_dir_all(&dir);

    let base = runs[0].measurement.seconds;
    println!("| config | seconds | overhead | writes | KiB written | write time (s) |");
    println!("|---|---|---|---|---|---|");
    for r in &runs {
        println!(
            "| {} | {:.3} | {} | {} | {:.1} | {:.4} |",
            r.name,
            r.measurement.seconds,
            if r.name == "plain" {
                "—".to_string()
            } else {
                format!("{:+.1}%", (r.measurement.seconds / base.max(1e-9) - 1.0) * 100.0)
            },
            r.stats.writes,
            r.stats.bytes as f64 / 1024.0,
            r.stats.write_time.as_secs_f64(),
        );
    }
    println!();
    let _ = persist("bench_checkpoint", &runs);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckpt_run_json_has_the_write_counters() {
        let run = CkptRun {
            name: "every-1",
            measurement: Measurement {
                miner: "DISC-all +checkpoint".into(),
                param: 1000.0,
                seconds: 0.5,
                patterns: 17,
                max_length: 4,
                threads: 1,
                rows_per_sec: 2000.0,
                peak_alloc_bytes: 4096,
                peak_rss_bytes: 0,
            },
            stats: CheckpointStats {
                writes: 9,
                boundaries: 9,
                bytes: 1234,
                write_time: std::time::Duration::from_millis(5),
                failed: false,
            },
        };
        let json = run.to_json();
        assert!(json.contains("\"writes\":9"), "got {json}");
        assert!(json.contains("\"bytes\":1234"), "got {json}");
        assert!(json.contains("\"write_seconds\":"), "got {json}");
    }
}
