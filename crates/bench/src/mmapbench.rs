//! The out-of-core benchmark: the workload pair behind the committed
//! `BENCH_mmap.json` and CI's `out-of-core-smoke` job.
//!
//! Two claims, measured per workload:
//!
//! 1. **Bounded memory.** Mining a memory-mapped `DSCFD1` flat file must
//!    allocate less than half the file's size on the heap — i.e. a
//!    database whose flat file is ≥ 2× a memory ceiling mines to
//!    completion under that ceiling, bit-identical to the in-memory run.
//!    The ceiling here is `file_bytes / 2` and the check is on the
//!    tracking allocator's *growth* during the run (mapped file pages are
//!    the kernel's to cache and evict; the run's own footprint is what
//!    out-of-core boundedness means). The run panics if the ceiling or
//!    bit-identity is violated — this benchmark doubles as the
//!    acceptance test.
//!
//! 2. **Time to first pattern.** Once a miner holds flat columns, the
//!    work to its first pattern is *identical* whether the columns are
//!    heap-owned or mapped — so the time-to-first-pattern gap between
//!    the two pipelines is exactly the load-to-mining-ready gap, and
//!    that is what the probe times: header-only verified `open` of the
//!    mapping versus the heap pipeline (read + `DSCDB1` varint decode +
//!    arena build). A trivial-threshold mine runs *outside* the timer
//!    on both sides to prove each loaded state really produces the same
//!    first patterns. The ratio is recorded; the committed
//!    medium-workload baseline shows ≥ 10×.
//!
//! Workloads mirror `flatbench`: `smoke` (CI-sized) and `medium` (the
//! headline numbers). Reports land in `target/experiments/bench_mmap.json`;
//! the committed copy is `BENCH_mmap.json` at the repo root.

use crate::flatbench::{best_of, SEED};
use crate::report::{persist, ToJson};
use crate::runner::{assert_agreement, deadline, peak_rss_bytes, reset_peak_rss, Measurement};
use crate::workloads::WorkloadCache;
use disc_algo::DiscAll;
use disc_core::{
    decode_database, encode_database, encode_database_flat_file, open_flat_file, write_flat_file,
    CancelToken, FlatDb, MinSupport, MineGuard, MiningResult, ResourceBudget, Verify,
};
use disc_datagen::QuestConfig;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Minimum support for the bounded-memory runs. Higher than `flatbench`'s
/// headline threshold on purpose: out-of-core boundedness is a claim about
/// database size versus mining state, so the pattern explosion of very low
/// thresholds would only obscure it.
pub const MINSUP: f64 = 0.5;

/// Threshold for the untimed identity mine of the time-to-first-pattern
/// probes; the timer stops at mining-ready, so this only needs to yield a
/// non-empty pattern set on both loaded states.
pub const TTFP_MINSUP: f64 = MINSUP;

/// One out-of-core workload.
#[derive(Debug, Clone, Copy)]
pub struct MmapWorkload {
    /// Stable name used in the JSON report.
    pub name: &'static str,
    /// Customer count for the Figure 9 generator.
    pub ncust: usize,
}

/// The workload grid. `smoke` must stay cheap — CI runs it on every push.
pub fn workloads() -> [MmapWorkload; 2] {
    [MmapWorkload { name: "smoke", ncust: 2_000 }, MmapWorkload { name: "medium", ncust: 5_000 }]
}

/// The generator configuration: Figure 9's dense rows (8 transactions × 8
/// items), but drawn from a pool of only 50 candidate patterns so the
/// embedded sequences recur often enough to stay frequent — and deep — at
/// [`MINSUP`]. Out-of-core mining is about big inputs, not big outputs, so
/// the workload is tuned for long rows and a result set that stays small
/// next to the file.
pub fn workload_config(w: MmapWorkload) -> QuestConfig {
    QuestConfig::paper_fig9().with_ncust(w.ncust).with_pools(50, 500).with_seed(SEED)
}

/// Results for one workload.
#[derive(Debug, Clone)]
pub struct MmapRun {
    /// The workload this run measured.
    pub workload: MmapWorkload,
    /// Size of the `DSCFD1` flat file on disk.
    pub file_bytes: u64,
    /// The memory ceiling the mapped run must stay under: `file_bytes / 2`.
    pub ceiling_bytes: u64,
    /// Best-of-repeats measurement mining the memory-mapped file
    /// (`peak_alloc_bytes` is the ceiling-checked number).
    pub mapped: Measurement,
    /// Best-of-repeats measurement of the in-memory reference run.
    pub heap: Measurement,
    /// Seconds from flat file on disk to mining-ready columns
    /// (header-only verified memory mapping). The mine that follows is
    /// byte-for-byte the same as the heap path's, so this difference is
    /// the time-to-first-pattern difference.
    pub ttfp_mmap_seconds: f64,
    /// Seconds from `DSCDB1` file on disk to mining-ready columns (read,
    /// varint decode, arena build).
    pub ttfp_heap_seconds: f64,
}

impl MmapRun {
    /// Heap-load / mmap-load time-to-first-pattern ratio (bigger is
    /// better for the mapped path).
    pub fn ttfp_ratio(&self) -> f64 {
        self.ttfp_heap_seconds / self.ttfp_mmap_seconds.max(1e-9)
    }
}

impl ToJson for MmapRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"ncust\":{},\"minsup\":{},\"file_bytes\":{},\"ceiling_bytes\":{},\
             \"mapped\":{},\"heap\":{},\"ttfp_mmap_seconds\":{},\"ttfp_heap_seconds\":{},\
             \"ttfp_ratio\":{}}}",
            self.workload.name.to_string().to_json(),
            self.workload.ncust.to_json(),
            MINSUP.to_json(),
            (self.file_bytes as usize).to_json(),
            (self.ceiling_bytes as usize).to_json(),
            self.mapped.to_json(),
            self.heap.to_json(),
            self.ttfp_mmap_seconds.to_json(),
            self.ttfp_heap_seconds.to_json(),
            self.ttfp_ratio().to_json()
        )
    }
}

/// Times one guarded flat mine under the bench deadline, reporting the
/// run's own heap growth (and RSS watermark) like [`crate::runner::measure`].
fn measure_flat<F: FnOnce() -> MiningResult>(
    miner_name: &str,
    rows: usize,
    param: f64,
    run: F,
) -> (Measurement, MiningResult) {
    crate::alloc_track::reset_peak();
    reset_peak_rss();
    let live_at_start = crate::alloc_track::live_bytes();
    let start = Instant::now();
    let result = run();
    let seconds = start.elapsed().as_secs_f64();
    let peak_alloc_bytes = crate::alloc_track::peak_bytes().saturating_sub(live_at_start);
    (
        Measurement {
            miner: miner_name.to_string(),
            param,
            seconds,
            patterns: result.len(),
            max_length: result.max_length(),
            threads: 1,
            rows_per_sec: rows as f64 / seconds.max(1e-9),
            peak_alloc_bytes,
            peak_rss_bytes: peak_rss_bytes(),
        },
        result,
    )
}

/// Mines a flat database under the bench deadline, panicking on abort.
fn mine_flat_deadline(flat: &FlatDb, minsup: MinSupport) -> MiningResult {
    let guard =
        MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_deadline(deadline()));
    let run = DiscAll::default().mine_flat_guarded(flat, minsup, &guard);
    assert!(run.outcome.is_complete(), "flat mine aborted: {:?}", run.outcome);
    run.result
}

/// Runs one workload end to end and enforces both acceptance claims.
fn run_workload(cache: &WorkloadCache, dir: &Path, w: MmapWorkload) -> MmapRun {
    let db = cache.get(&workload_config(w));
    let minsup = MinSupport::Fraction(MINSUP);

    // Materialize both on-disk forms.
    let dscdb_path = dir.join(format!("{}.dscdb", w.name));
    std::fs::write(&dscdb_path, encode_database(&db)).expect("write dscdb");
    let flat_path = dir.join(format!("{}.dscfd", w.name));
    let file_bytes =
        write_flat_file(&flat_path, &encode_database_flat_file(&db)).expect("write flat file");
    let ceiling_bytes = file_bytes / 2;

    // In-memory reference: the ordinary heap pipeline.
    let mut reference = None;
    let heap = best_of(|| {
        let flat = FlatDb::from_database(&db);
        let (m, result) = measure_flat("DISC-all (heap)", db.len(), w.ncust as f64, || {
            mine_flat_deadline(&flat, minsup)
        });
        reference = Some(result);
        m
    });
    let reference = reference.expect("at least one heap run");

    // Bounded out-of-core run: open the mapping inside the measured
    // region, so the decode path's allocations count against the ceiling.
    let mut mapped_result = None;
    let mapped = best_of(|| {
        let (m, result) = measure_flat("DISC-all (mmap)", db.len(), w.ncust as f64, || {
            let contents = open_flat_file(&flat_path, Verify::Full).expect("open flat file");
            assert!(
                contents.is_mapped(),
                "flat columns fell back to the heap; the out-of-core claim is void"
            );
            let compact = mine_flat_deadline(&contents.flat, minsup);
            contents.mapping.restore_result(&compact)
        });
        mapped_result = Some(result);
        m
    });
    assert_agreement("mmap-mined patterns", &mapped_result.expect("mapped run"), &reference);
    assert!(
        (mapped.peak_alloc_bytes as u64) <= ceiling_bytes,
        "{}: mapped mine allocated {} bytes, over the {}-byte ceiling (file {} bytes)",
        w.name,
        mapped.peak_alloc_bytes,
        ceiling_bytes,
        file_bytes,
    );

    // Time to first pattern: time each pipeline to mining-ready columns,
    // then (untimed) run the same trivial-threshold mine on both loaded
    // states to prove they produce identical first patterns.
    let ttfp_minsup = MinSupport::Fraction(TTFP_MINSUP);
    let mut ttfp_heap = f64::INFINITY;
    let mut ttfp_mmap = f64::INFINITY;
    let mut heap_first = MiningResult::new();
    let mut mmap_first = MiningResult::new();
    for _ in 0..crate::flatbench::REPEATS {
        let start = Instant::now();
        let bytes = std::fs::read(&dscdb_path).expect("read dscdb");
        let decoded = decode_database(&bytes).expect("decode dscdb");
        let flat = FlatDb::from_database(&decoded);
        ttfp_heap = ttfp_heap.min(start.elapsed().as_secs_f64());
        heap_first = mine_flat_deadline(&flat, ttfp_minsup);

        let start = Instant::now();
        let contents = open_flat_file(&flat_path, Verify::HeaderOnly).expect("open flat file");
        ttfp_mmap = ttfp_mmap.min(start.elapsed().as_secs_f64());
        let compact = mine_flat_deadline(&contents.flat, ttfp_minsup);
        mmap_first = contents.mapping.restore_result(&compact);
    }
    assert!(!heap_first.is_empty(), "ttfp probe found no pattern; lower TTFP_MINSUP");
    assert_agreement("ttfp probes", &mmap_first, &heap_first);

    let run = MmapRun {
        workload: w,
        file_bytes,
        ceiling_bytes,
        mapped,
        heap,
        ttfp_mmap_seconds: ttfp_mmap,
        ttfp_heap_seconds: ttfp_heap,
    };
    eprintln!(
        "    {:<8} file {:>6.1} MiB  ceiling {:>6.1} MiB  mapped peak {:>6.1} MiB  \
         ttfp {:>8.3} ms vs {:>8.3} ms heap ({:.1}x)",
        w.name,
        file_bytes as f64 / (1 << 20) as f64,
        ceiling_bytes as f64 / (1 << 20) as f64,
        run.mapped.peak_alloc_bytes as f64 / (1 << 20) as f64,
        ttfp_mmap * 1e3,
        ttfp_heap * 1e3,
        run.ttfp_ratio(),
    );
    run
}

/// Runs the out-of-core benchmark (smoke only, or both workloads),
/// persists `target/experiments/bench_mmap.json`, and returns the runs.
pub fn run(smoke_only: bool) -> Vec<MmapRun> {
    println!("## Out-of-core benchmark (Figure 9 rows, minsup {MINSUP})\n");
    let dir = PathBuf::from("target/experiments/mmapbench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let cache = WorkloadCache::new();
    let runs: Vec<MmapRun> = workloads()
        .into_iter()
        .filter(|w| !smoke_only || w.name == "smoke")
        .map(|w| run_workload(&cache, &dir, w))
        .collect();
    println!(
        "| workload | file MiB | ceiling MiB | mapped peak MiB | mapped (s) | heap (s) | ttfp ratio |"
    );
    println!("|---|---|---|---|---|---|---|");
    for r in &runs {
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.3} | {:.3} | {:.1}x |",
            r.workload.name,
            r.file_bytes as f64 / (1 << 20) as f64,
            r.ceiling_bytes as f64 / (1 << 20) as f64,
            r.mapped.peak_alloc_bytes as f64 / (1 << 20) as f64,
            r.mapped.seconds,
            r.heap.seconds,
            r.ttfp_ratio(),
        );
    }
    println!();
    let _ = persist("bench_mmap", &runs);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatbench::extract_baseline;

    #[test]
    fn workload_grid_is_stable() {
        let ws = workloads();
        assert_eq!(ws[0].name, "smoke");
        assert_eq!(ws[1].name, "medium");
        assert!(ws[0].ncust < ws[1].ncust);
    }

    #[test]
    fn mmap_run_json_roundtrips_through_extractor() {
        let run = MmapRun {
            workload: workloads()[0],
            file_bytes: 4096,
            ceiling_bytes: 2048,
            mapped: Measurement {
                miner: "DISC-all (mmap)".into(),
                param: 1000.0,
                seconds: 0.5,
                patterns: 9,
                max_length: 3,
                threads: 1,
                rows_per_sec: 2000.0,
                peak_alloc_bytes: 1024,
                peak_rss_bytes: 0,
            },
            heap: Measurement {
                miner: "DISC-all (heap)".into(),
                param: 1000.0,
                seconds: 0.4,
                patterns: 9,
                max_length: 3,
                threads: 1,
                rows_per_sec: 2500.0,
                peak_alloc_bytes: 8192,
                peak_rss_bytes: 0,
            },
            ttfp_mmap_seconds: 0.001,
            ttfp_heap_seconds: 0.02,
        };
        let json = vec![run].to_json();
        assert_eq!(extract_baseline(&json, "smoke", "file_bytes"), Some(4096.0));
        assert_eq!(extract_baseline(&json, "smoke", "ceiling_bytes"), Some(2048.0));
        assert_eq!(extract_baseline(&json, "smoke", "ttfp_ratio"), Some(20.0));
    }

    #[test]
    fn ttfp_ratio_guards_zero_division() {
        let mut run = MmapRun {
            workload: workloads()[0],
            file_bytes: 2,
            ceiling_bytes: 1,
            mapped: Measurement {
                miner: "m".into(),
                param: 0.0,
                seconds: 0.0,
                patterns: 0,
                max_length: 0,
                threads: 1,
                rows_per_sec: 0.0,
                peak_alloc_bytes: 0,
                peak_rss_bytes: 0,
            },
            heap: Measurement {
                miner: "h".into(),
                param: 0.0,
                seconds: 0.0,
                patterns: 0,
                max_length: 0,
                threads: 1,
                rows_per_sec: 0.0,
                peak_alloc_bytes: 0,
                peak_rss_bytes: 0,
            },
            ttfp_mmap_seconds: 0.0,
            ttfp_heap_seconds: 1.0,
        };
        assert!(run.ttfp_ratio().is_finite());
        run.ttfp_mmap_seconds = 0.5;
        assert_eq!(run.ttfp_ratio(), 2.0);
    }
}
