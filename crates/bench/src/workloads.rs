//! Workload construction for the paper's experiments, with an in-memory
//! cache so sweeps reuse generated databases.

use disc_core::SequenceDatabase;
use disc_datagen::QuestConfig;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Scale presets for the experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-sized: the paper's parameters with customer counts divided by
    /// ten — finishes in minutes.
    Default,
    /// Quick smoke run for CI and tests: small customer counts, coarser
    /// support grids.
    Smoke,
    /// The paper's sizes (50K–500K customers). Expect long runtimes.
    Full,
}

impl Scale {
    /// Divisor applied to the paper's customer counts.
    pub fn ncust_divisor(self) -> usize {
        match self {
            Scale::Full => 1,
            Scale::Default => 10,
            Scale::Smoke => 100,
        }
    }
}

/// The Figure 8 sweep: database sizes (paper: 50K–500K customers).
pub fn fig8_sizes(scale: Scale) -> Vec<usize> {
    let base = [50_000usize, 100_000, 200_000, 350_000, 500_000];
    let div = scale.ncust_divisor();
    base.iter().map(|n| n / div).collect()
}

/// The Figure 9 / Tables 12–13 support grid (the paper's eight thresholds).
pub fn fig9_thresholds(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Smoke => vec![0.02, 0.01, 0.005],
        _ => vec![0.02, 0.0175, 0.015, 0.0125, 0.01, 0.0075, 0.005, 0.0025],
    }
}

/// The Figure 10 / Table 14 θ grid (average transactions per customer).
pub fn theta_grid(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Smoke => vec![10.0, 20.0, 30.0],
        _ => vec![10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0],
    }
}

/// A Figure 8 database: Table 11 parameters at a given customer count.
pub fn fig8_db(ncust: usize, seed: u64) -> QuestConfig {
    QuestConfig::paper_table11().with_ncust(ncust).with_seed(seed)
}

/// The Figure 9 database: slen = tlen = seq.patlen = 8. The paper's 10K
/// customers are already laptop-sized, so `Default` matches `Full`.
pub fn fig9_db(scale: Scale, seed: u64) -> QuestConfig {
    let ncust = match scale {
        Scale::Smoke => 1_000,
        Scale::Default | Scale::Full => 10_000,
    };
    QuestConfig::paper_fig9().with_ncust(ncust).with_seed(seed)
}

/// A Figure 10 / Table 14 database: 50K customers, θ transactions each.
pub fn fig10_db(theta: f64, scale: Scale, seed: u64) -> QuestConfig {
    QuestConfig::paper_fig10(theta).with_ncust(50_000 / scale.ncust_divisor()).with_seed(seed)
}

/// Process-wide workload cache keyed by configuration, with a second layer
/// on disk (`target/workloads/*.dscdb`, the compact [`disc_core::codec`]
/// format) so repeated harness invocations skip generation entirely.
#[derive(Default)]
pub struct WorkloadCache {
    cache: Mutex<HashMap<String, Arc<SequenceDatabase>>>,
}

impl WorkloadCache {
    /// A fresh cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// Generates (or reuses) the database for a configuration.
    pub fn get(&self, cfg: &QuestConfig) -> Arc<SequenceDatabase> {
        let key = format!("{cfg:?}");
        if let Some(db) = self.cache.lock().expect("cache lock").get(&key) {
            return Arc::clone(db);
        }
        let db = Arc::new(self.load_or_generate(cfg, &key));
        self.cache.lock().expect("cache lock").insert(key, Arc::clone(&db));
        db
    }

    fn load_or_generate(&self, cfg: &QuestConfig, key: &str) -> SequenceDatabase {
        // The generator version is part of the cache key so datagen changes
        // invalidate cached datasets instead of silently reusing stale ones.
        let versioned = format!("gen-v{GENERATOR_CACHE_VERSION}:{key}");
        let path = std::path::PathBuf::from("target/workloads")
            .join(format!("{:016x}.dscdb", fnv1a(versioned.as_bytes())));
        if let Ok(bytes) = std::fs::read(&path) {
            if let Ok(db) = disc_core::decode_database(&bytes) {
                return db;
            }
            // Corrupt or stale cache entry: fall through and regenerate.
        }
        let db = cfg.generate();
        if std::fs::create_dir_all("target/workloads").is_ok() {
            let _ = std::fs::write(&path, disc_core::encode_database(&db));
        }
        db
    }
}

/// Bump when `disc-datagen`'s sampling logic changes, so on-disk workload
/// caches regenerate.
const GENERATOR_CACHE_VERSION: u32 = 1;

/// FNV-1a over the configuration key — cache naming only, not security.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_divide_customer_counts() {
        assert_eq!(fig8_sizes(Scale::Full)[0], 50_000);
        assert_eq!(fig8_sizes(Scale::Default)[0], 5_000);
        assert_eq!(fig8_sizes(Scale::Smoke)[0], 500);
    }

    #[test]
    fn fig9_grid_matches_paper() {
        let grid = fig9_thresholds(Scale::Default);
        assert_eq!(grid.len(), 8);
        assert_eq!(grid[0], 0.02);
        assert_eq!(grid[7], 0.0025);
    }

    #[test]
    fn cache_returns_same_database() {
        let cache = WorkloadCache::new();
        let cfg = QuestConfig::paper_table11().with_ncust(50).with_nitems(30).with_pools(20, 40);
        let a = cache.get(&cfg);
        let b = cache.get(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 50);
    }
}
