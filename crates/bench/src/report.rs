//! Table rendering (paper-style rows on stdout) and JSON persistence of
//! measurements under `target/experiments/`.

use crate::runner::Measurement;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Renders a markdown table: one row per sweep value, one column per miner.
pub fn runtime_table(
    param_name: &str,
    params: &[f64],
    miners: &[String],
    measurements: &[Measurement],
) -> String {
    let mut out = String::new();
    write!(out, "| {param_name} |").expect("string write");
    for m in miners {
        write!(out, " {m} (s) |").expect("string write");
    }
    out.push('\n');
    write!(out, "|---|").expect("string write");
    for _ in miners {
        out.push_str("---|");
    }
    out.push('\n');
    for &p in params {
        write!(out, "| {} |", trim_float(p)).expect("string write");
        for m in miners {
            match measurements.iter().find(|x| x.miner == *m && (x.param - p).abs() < 1e-12) {
                Some(x) => write!(out, " {:.3} |", x.seconds).expect("string write"),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders an NRR table: one row per sweep value, one column per partition
/// level ("Original", 1, 2, …), dashes for absent levels.
pub fn nrr_table(param_name: &str, rows: &[(f64, Vec<Option<f64>>)]) -> String {
    let width = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(1);
    let mut out = String::new();
    write!(out, "| {param_name} | Original |").expect("string write");
    for level in 1..width {
        write!(out, " {level} |").expect("string write");
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in 0..width {
        out.push_str("---|");
    }
    out.push('\n');
    for (p, levels) in rows {
        write!(out, "| {} |", trim_float(*p)).expect("string write");
        for i in 0..width {
            match levels.get(i).copied().flatten() {
                Some(v) => write!(out, " {v:.4} |").expect("string write"),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Formats a float without trailing zeros (so thresholds print like the
/// paper: 0.0025, 0.005, …).
pub fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Hand-rolled JSON rendering for the handful of payload shapes the
/// experiments persist. (The offline build environment has no serde, so the
/// encoder lives here; the output matches what `serde_json` produced for
/// the same payloads.)
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> String;
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            // `Display` for f64 prints the shortest round-tripping decimal,
            // which is valid JSON for finite values.
            format!("{self}")
        } else {
            "null".to_string()
        }
    }
}

impl ToJson for usize {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("string write"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> String {
        format!("[{},{}]", self.0.to_json(), self.1.to_json())
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> String {
        format!(
            "[{},{},{},{}]",
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json()
        )
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> String {
        format!(
            "{{\"miner\":{},\"param\":{},\"seconds\":{},\"patterns\":{},\"max_length\":{},\"threads\":{},\"rows_per_sec\":{},\"peak_alloc_bytes\":{},\"peak_rss_bytes\":{}}}",
            self.miner.to_json(),
            self.param.to_json(),
            self.seconds.to_json(),
            self.patterns.to_json(),
            self.max_length.to_json(),
            self.threads.to_json(),
            self.rows_per_sec.to_json(),
            self.peak_alloc_bytes.to_json(),
            self.peak_rss_bytes.to_json()
        )
    }
}

/// Persists a payload as JSON under `target/experiments/`.
pub fn persist<T: ToJson>(name: &str, payload: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, payload.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_table_layout() {
        let miners = vec!["A".to_string(), "B".to_string()];
        let measurements = vec![
            Measurement {
                miner: "A".into(),
                param: 1.0,
                seconds: 0.5,
                patterns: 10,
                max_length: 3,
                threads: 1,
                rows_per_sec: 2.0,
                peak_alloc_bytes: 1024,
                peak_rss_bytes: 0,
            },
            Measurement {
                miner: "B".into(),
                param: 1.0,
                seconds: 1.25,
                patterns: 10,
                max_length: 3,
                threads: 1,
                rows_per_sec: 0.8,
                peak_alloc_bytes: 2048,
                peak_rss_bytes: 0,
            },
        ];
        let t = runtime_table("n", &[1.0, 2.0], &miners, &measurements);
        assert!(t.contains("| n | A (s) | B (s) |"));
        assert!(t.contains("| 1 | 0.500 | 1.250 |"));
        assert!(t.contains("| 2 | - | - |"));
    }

    #[test]
    fn nrr_table_uses_dashes() {
        let rows = vec![
            (0.02, vec![Some(0.0027), Some(0.18)]),
            (0.01, vec![Some(0.0022), Some(0.14), Some(0.92)]),
        ];
        let t = nrr_table("δ", &rows);
        assert!(t.contains("| δ | Original | 1 | 2 |"));
        assert!(t.contains("| 0.02 | 0.0027 | 0.1800 | - |"));
        assert!(t.contains("| 0.01 | 0.0022 | 0.1400 | 0.9200 |"));
    }

    #[test]
    fn measurement_json_includes_throughput_and_peak() {
        let m = Measurement {
            miner: "A".into(),
            param: 1.0,
            seconds: 0.5,
            patterns: 10,
            max_length: 3,
            threads: 1,
            rows_per_sec: 2.0,
            peak_alloc_bytes: 1024,
            peak_rss_bytes: 0,
        };
        let json = m.to_json();
        assert!(json.contains("\"rows_per_sec\":2"));
        assert!(json.contains("\"peak_alloc_bytes\":1024"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(0.0025), "0.0025");
        assert_eq!(trim_float(10.0), "10");
        assert_eq!(trim_float(0.02), "0.02");
    }
}
