//! The serving benchmark: what mining-as-a-service costs over direct
//! library calls, and what the result cache buys.
//!
//! Spins up a real [`disc_server::Server`] (TCP, own data directory under
//! `target/`), then measures three things over the flat-bench smoke
//! workload:
//!
//! | row | what is timed |
//! |---|---|
//! | `cold-job` | submit → poll → done, cache disabled (full mining path) |
//! | `cached-job` | the same query resubmitted — served from the cache |
//! | `tenants-2` | 2 tenants × jobs each, per-job latency p50/p99 + jobs/sec |
//! | `tenants-8` | 8 tenants × jobs each, same, on the same 2-thread pool |
//!
//! Every mined result is checked byte-identical to a direct `DiscAll` run
//! before any number is reported — the benchmark doubles as an end-to-end
//! serving agreement gate. The cached row must show **zero** additional
//! miner invocations (read from the scheduler's counter), or the run
//! panics.
//!
//! Like the store and checkpoint benches, this is **exempt from the
//! bench-regression gate**: scheduling latency under contention is too
//! machine-dependent to gate CI. Numbers persist to
//! `target/experiments/bench_serve.json`; the committed copy is
//! `BENCH_serve.json` at the repo root.

use crate::report::{persist, ToJson};
use crate::workloads::{fig8_db, WorkloadCache};
use disc_algo::DiscAll;
use disc_core::{MinSupport, SequenceDatabase, SequentialMiner};
use disc_server::{SchedulerConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Same fixed seed as the flat benchmark.
const SEED: u64 = 20040330;
/// Customers in the workload (the flat-bench `smoke` size).
const NCUST: usize = 1_000;
/// Jobs per tenant in the contention rows.
const JOBS_PER_TENANT: usize = 4;
/// The support-count thresholds the contention rows cycle through. Distinct
/// per job so the cache never short-circuits the scheduling path.
const DELTAS: [u64; 8] = [30, 35, 40, 45, 50, 55, 60, 65];

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Row name (see the module table).
    pub name: &'static str,
    /// Total wall-clock seconds for the row.
    pub seconds: f64,
    /// Jobs completed.
    pub jobs: usize,
    /// Jobs per second over the row's wall clock.
    pub jobs_per_sec: f64,
    /// Median per-job latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-job latency, milliseconds (max for small n).
    pub p99_ms: f64,
    /// Miner invocations (slices) the row consumed.
    pub mine_invocations: u64,
}

impl ToJson for ServeRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"seconds\":{},\"jobs\":{},\"jobs_per_sec\":{},\"p50_ms\":{},\"p99_ms\":{},\"mine_invocations\":{}}}",
            self.name.to_string().to_json(),
            self.seconds.to_json(),
            self.jobs.to_json(),
            self.jobs_per_sec.to_json(),
            self.p50_ms.to_json(),
            self.p99_ms.to_json(),
            (self.mine_invocations as usize).to_json(),
        )
    }
}

// ---------------------------------------------------------------------
// A minimal blocking HTTP client (the server speaks Connection: close).

fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to bench server");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body).unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status: u16 = text.get(9..12).and_then(|v| v.parse().ok()).expect("status line");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn field(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("no {key} in {json}"));
    let rest = &json[at + needle.len()..];
    let rest = rest.strip_prefix('"').unwrap_or(rest);
    rest.split(['"', ',', '}']).next().unwrap().to_string()
}

/// Submits one job and blocks until it is done; returns the latency.
fn run_job(addr: SocketAddr, target: &str) -> Duration {
    let start = Instant::now();
    let (status, body) = http(addr, "POST", target, b"");
    assert!(status == 200 || status == 202, "submit failed: {status} {body}");
    let id = field(&body, "id");
    if field(&body, "state") == "done" {
        return start.elapsed();
    }
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{id}"), b"");
        match field(&body, "state").as_str() {
            "done" => return start.elapsed(),
            "failed" | "cancelled" => panic!("bench job died: {body}"),
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One hostile request: a declared `Content-Length` far over the body cap,
/// with no body behind it. The server must answer 413 from the header
/// alone; the returned duration is the full refusal round trip.
fn rejected_413(addr: SocketAddr) -> Duration {
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect to bench server");
    s.write_all(b"POST /dbs?name=hostile HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")
        .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    assert!(resp.starts_with(b"HTTP/1.1 413"), "expected a prompt 413");
    start.elapsed()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn row(
    name: &'static str,
    total: Duration,
    latencies_ms: &mut [f64],
    invocations: u64,
) -> ServeRun {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let seconds = total.as_secs_f64();
    ServeRun {
        name,
        seconds,
        jobs: latencies_ms.len(),
        jobs_per_sec: latencies_ms.len() as f64 / seconds.max(1e-9),
        p50_ms: percentile(latencies_ms, 0.50),
        p99_ms: percentile(latencies_ms, 0.99),
        mine_invocations: invocations,
    }
}

fn print_row(r: &ServeRun) {
    println!(
        "  {:<12} {:>7.3}s  {:>3} jobs  {:>8.2} jobs/s  p50 {:>8.2} ms  p99 {:>8.2} ms  {:>3} slices",
        r.name, r.seconds, r.jobs, r.jobs_per_sec, r.p50_ms, r.p99_ms, r.mine_invocations
    );
}

/// The contention row: `tenants` tenants, each submitting
/// [`JOBS_PER_TENANT`] cache-bypassing jobs from its own client thread.
fn tenant_row(name: &'static str, addr: SocketAddr, server: &Server, tenants: usize) -> ServeRun {
    let before = server.scheduler().mine_invocations.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                scope.spawn(move || {
                    (0..JOBS_PER_TENANT)
                        .map(|j| {
                            let delta = DELTAS[(t * JOBS_PER_TENANT + j) % DELTAS.len()];
                            let target =
                                format!("/jobs?db=bench&tenant=tenant{t}&delta={delta}&nocache=1");
                            run_job(addr, &target).as_secs_f64() * 1e3
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("tenant thread")).collect()
    });
    let total = start.elapsed();
    let after = server.scheduler().mine_invocations.load(Ordering::Relaxed);
    row(name, total, &mut latencies, after - before)
}

/// The exact bytes direct mining produces, for the agreement check.
fn expected(db: &SequenceDatabase, delta: u64) -> String {
    DiscAll::default()
        .mine(db, MinSupport::Count(delta))
        .iter()
        .map(|(p, s)| format!("{s}\t{p}\n"))
        .collect()
}

/// Runs the serving benchmark and persists the report to
/// `target/experiments/bench_serve.json`.
pub fn run() -> Vec<ServeRun> {
    println!("## Serving benchmark (Table 11 smoke, {NCUST} customers, 2-thread pool)\n");
    let cache = WorkloadCache::new();
    let db = cache.get(&fig8_db(NCUST, SEED));

    let data_dir = std::path::PathBuf::from("target/experiments/servebench-data");
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir,
        scheduler: SchedulerConfig {
            threads: 2,
            slice_ops: 2_000_000,
            checkpoint_every: 8,
            ..SchedulerConfig::default()
        },
        cache_entries: 64,
        ..ServerConfig::default()
    });
    let runner = server.clone();
    let handle = std::thread::spawn(move || runner.run().expect("bench server"));
    let addr = loop {
        if let Some(a) = server.local_addr() {
            break a;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let (status, _) = http(addr, "POST", "/dbs?name=bench", &disc_core::encode_database(&db));
    assert_eq!(status, 201, "database registration failed");

    let mut rows = Vec::new();

    // Cold: the full submit → schedule → mine → render path, no cache.
    let cold_delta = DELTAS[0];
    let invocations0 = server.scheduler().mine_invocations.load(Ordering::Relaxed);
    let start = Instant::now();
    let cold = run_job(addr, &format!("/jobs?db=bench&delta={cold_delta}&nocache=1"));
    let invocations_cold =
        server.scheduler().mine_invocations.load(Ordering::Relaxed) - invocations0;
    let mut cold_ms = vec![cold.as_secs_f64() * 1e3];
    rows.push(row("cold-job", start.elapsed(), &mut cold_ms, invocations_cold));
    print_row(&rows[0]);

    // Prime the cache with the same query (cacheable this time), then the
    // cached row: resubmits must be served with zero extra invocations.
    run_job(addr, &format!("/jobs?db=bench&delta={cold_delta}"));
    let before = server.scheduler().mine_invocations.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut cached_ms: Vec<f64> = (0..20)
        .map(|_| run_job(addr, &format!("/jobs?db=bench&delta={cold_delta}")).as_secs_f64() * 1e3)
        .collect();
    let total = start.elapsed();
    let extra = server.scheduler().mine_invocations.load(Ordering::Relaxed) - before;
    assert_eq!(extra, 0, "cached resubmits must not invoke the miner");
    rows.push(row("cached-job", total, &mut cached_ms, extra));
    print_row(&rows[1]);

    // Agreement gate before the contention rows: the served bytes are the
    // direct-mining bytes.
    let (_, listing) = http(addr, "GET", "/jobs/1/result", b"");
    assert_eq!(listing, expected(&db, cold_delta), "served result differs from direct mining");

    for (name, tenants) in [("tenants-2", 2usize), ("tenants-8", 8usize)] {
        let r = tenant_row(name, addr, &server, tenants);
        print_row(&r);
        rows.push(r);
    }

    // Fast rejection: an over-cap declared Content-Length must be refused
    // from the header alone, so shedding hostile uploads costs microseconds
    // of parsing — never a buffer, never a miner invocation. This is the
    // admission-control claim in ALGORITHM.md §17, measured.
    let before = server.scheduler().mine_invocations.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut reject_ms: Vec<f64> = (0..50).map(|_| rejected_413(addr).as_secs_f64() * 1e3).collect();
    let total = start.elapsed();
    let extra = server.scheduler().mine_invocations.load(Ordering::Relaxed) - before;
    assert_eq!(extra, 0, "rejections must not touch the miner");
    let r = row("reject-413", total, &mut reject_ms, extra);
    print_row(&r);
    rows.push(r);

    let (status, _) = http(addr, "POST", "/admin/drain", b"");
    assert_eq!(status, 200);
    handle.join().expect("server thread");

    println!("\n  cold/cached latency ratio: {:.1}x", rows[0].p50_ms / rows[1].p50_ms.max(1e-9));
    match persist("bench_serve", &rows) {
        Ok(path) => println!("  report: {}", path.display()),
        Err(e) => eprintln!("  report NOT persisted: {e}"),
    }
    rows
}
