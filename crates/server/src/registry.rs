//! The database registry: named databases jobs mine against.
//!
//! Two registration paths, mirroring the CLI's two input worlds:
//!
//! * **upload** — the request body is a text database (`cid: (a, b)(c)`)
//!   or a `DSCDB1` binary; the parsed database is persisted under the
//!   server's data directory (as `DSCDB1`) so a restart reloads it
//!   byte-identically;
//! * **attach** — the request names a server-local path: a `.dscfd` flat
//!   file, or a durable-store directory whose compacted `.dscfd` mirror is
//!   used. A store mirror that is **stale** — appends recovered from the
//!   WAL since the last compaction — is refused (409 at the API layer)
//!   rather than silently mining fewer rows, exactly like
//!   `disc-mine store mine --mmap`.
//!
//! Registration precomputes what every job on the database needs: the
//! FNV-1a fingerprint (cache key, checkpoint validation), and the
//! [`ItemMapping`] compaction the CLI applies before mining — so the
//! server's results stay byte-identical to `disc-mine` on the same input.

use disc_core::{
    database_fingerprint, open_flat_file, peek_flat_file_fingerprint, DiscError, ItemMapping,
    SequenceDatabase, SequenceStore, StoreConfig, Verify,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a registration was refused. `Conflict` maps to 409, everything else
/// flows through the [`crate::status`] `DiscError` mapping.
#[derive(Debug)]
pub enum RegisterError {
    /// A name/state conflict: duplicate name, stale store mirror.
    Conflict(String),
    /// A data or IO failure from the underlying layers.
    Disc(DiscError),
}

impl From<DiscError> for RegisterError {
    fn from(e: DiscError) -> RegisterError {
        RegisterError::Disc(e)
    }
}

/// How a database entered the registry — recorded in the manifest so a
/// restart can re-register it the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbSource {
    /// Uploaded body, persisted at `dbs/<name>.dscdb`.
    Upload,
    /// Attached from a server-local path (flat file or store directory).
    Attach(PathBuf),
}

/// A registered database plus everything precomputed at registration.
pub struct DbEntry {
    /// The registry name.
    pub name: String,
    /// The database, original item ids.
    pub db: Arc<SequenceDatabase>,
    /// The database the miners actually run on: compacted when the item-id
    /// space is sparse enough to be worth it, otherwise the original.
    /// Compaction preserves the row count, so δ resolution is unaffected.
    pub mine_db: Arc<SequenceDatabase>,
    /// `Some` when `mine_db` is compacted — mined patterns are translated
    /// back through it, exactly like the CLI.
    pub mapping: Option<ItemMapping>,
    /// FNV-1a fingerprint of `db` — the cache-key component.
    pub fingerprint: u64,
    /// Customer count.
    pub rows: usize,
    /// Provenance.
    pub source: DbSource,
}

impl DbEntry {
    fn build(name: String, db: SequenceDatabase, source: DbSource) -> DbEntry {
        let fingerprint = database_fingerprint(&db);
        let rows = db.len();
        let mapping = ItemMapping::analyze(&db);
        let db = Arc::new(db);
        let (mine_db, mapping) = if mapping.is_worthwhile() {
            (Arc::new(mapping.remap_database(&db)), Some(mapping))
        } else {
            (Arc::clone(&db), None)
        };
        DbEntry { name, db, mine_db, mapping, fingerprint, rows, source }
    }
}

/// The registry: name → entry, plus the persistence root.
pub struct DbRegistry {
    dbs_dir: PathBuf,
    entries: HashMap<String, Arc<DbEntry>>,
}

/// Registry names are path- and manifest-safe by construction.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !name.starts_with('.')
}

impl DbRegistry {
    /// A registry persisting uploads under `dbs_dir` (created on demand).
    pub fn new(dbs_dir: impl Into<PathBuf>) -> DbRegistry {
        DbRegistry { dbs_dir: dbs_dir.into(), entries: HashMap::new() }
    }

    /// Where an upload named `name` is persisted.
    pub fn upload_path(&self, name: &str) -> PathBuf {
        self.dbs_dir.join(format!("{name}.dscdb"))
    }

    /// Registers an uploaded body (text or `DSCDB1`), persisting it for
    /// restart. `persist` is off when reloading from the manifest (the
    /// file already exists and re-writing it proves nothing).
    pub fn register_upload(
        &mut self,
        name: &str,
        body: &[u8],
        persist: bool,
    ) -> Result<Arc<DbEntry>, RegisterError> {
        self.check_name_free(name)?;
        let db = parse_database(body)?;
        if persist {
            std::fs::create_dir_all(&self.dbs_dir)
                .map_err(|e| DiscError::from_io(&self.dbs_dir, &e))?;
            let path = self.upload_path(name);
            let bytes = disc_core::encode_database(&db);
            std::fs::write(&path, &bytes).map_err(|e| DiscError::from_io(&path, &e))?;
        }
        let entry = Arc::new(DbEntry::build(name.to_string(), db, DbSource::Upload));
        self.entries.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Registers a server-local path: a `.dscfd` flat file or a store
    /// directory (via its compacted mirror, refusing a stale one).
    pub fn register_attach(
        &mut self,
        name: &str,
        path: &Path,
    ) -> Result<Arc<DbEntry>, RegisterError> {
        self.check_name_free(name)?;
        let db = load_attached(path)?;
        let entry =
            Arc::new(DbEntry::build(name.to_string(), db, DbSource::Attach(path.to_path_buf())));
        self.entries.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a database by name.
    pub fn get(&self, name: &str) -> Option<Arc<DbEntry>> {
        self.entries.get(name).cloned()
    }

    /// All entries, sorted by name for stable listings.
    pub fn list(&self) -> Vec<Arc<DbEntry>> {
        let mut all: Vec<_> = self.entries.values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    fn check_name_free(&self, name: &str) -> Result<(), RegisterError> {
        if !valid_name(name) {
            return Err(RegisterError::Disc(DiscError::Config {
                option: "name".into(),
                reason: "database names are 1-64 chars of [A-Za-z0-9._-], not starting with '.'"
                    .into(),
            }));
        }
        if self.entries.contains_key(name) {
            return Err(RegisterError::Conflict(format!("database {name:?} already registered")));
        }
        Ok(())
    }
}

/// Parses an uploaded body the way `disc-mine` loads a database file:
/// `DSCDB1` by magic, text otherwise.
fn parse_database(body: &[u8]) -> Result<SequenceDatabase, DiscError> {
    if body.starts_with(b"DSCDB1\n") {
        return Ok(disc_core::decode_database(body)?);
    }
    let text = std::str::from_utf8(body).map_err(|_| DiscError::Config {
        option: "body".into(),
        reason: "neither DSCDB1 binary nor UTF-8 text".into(),
    })?;
    Ok(SequenceDatabase::from_text(text)?)
}

/// Loads an attached path. Store directories go through the stale-mirror
/// check; plain paths must be a flat file.
fn load_attached(path: &Path) -> Result<SequenceDatabase, RegisterError> {
    if path.is_dir() {
        return load_store_mirror(path);
    }
    let contents = open_flat_file(path, Verify::Full)?;
    Ok(materialize(&contents))
}

/// Opens a store directory and loads its compacted `.dscfd` mirror,
/// refusing a mirror that is stale relative to the recovered rows.
fn load_store_mirror(dir: &Path) -> Result<SequenceDatabase, RegisterError> {
    let store = SequenceStore::open(dir, StoreConfig::default())
        .map_err(|e| RegisterError::Disc(DiscError::Store(e)))?;
    let live_fp = store.fingerprint();
    let flat_path = store.flat_file_path();
    store.close().map_err(|e| RegisterError::Disc(DiscError::Store(e)))?;
    let mirror_fp = peek_flat_file_fingerprint(&flat_path).map_err(RegisterError::Disc)?;
    if mirror_fp != live_fp {
        return Err(RegisterError::Conflict(format!(
            "flat mirror {} is stale (fingerprint {mirror_fp:#018x}, store {live_fp:#018x}); \
             run `disc-mine store compact` first",
            flat_path.display()
        )));
    }
    let contents = open_flat_file(&flat_path, Verify::Full).map_err(RegisterError::Disc)?;
    Ok(materialize(&contents))
}

/// Materializes a heap database from flat-file contents, restoring original
/// item ids through the on-disk dictionary. Row order is preserved;
/// customer ids are positional (the flat format does not store them — they
/// do not affect mining or the rendered patterns).
fn materialize(contents: &disc_core::FlatFileContents) -> SequenceDatabase {
    SequenceDatabase::from_rows((0..contents.flat.len()).map(|i| {
        let compact = contents.flat.row(i).to_sequence();
        (disc_core::CustomerId(i as u64), contents.mapping.restore_sequence(&compact))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("disc-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn upload_roundtrips_both_formats_and_persists() {
        let d = dir("upload");
        let mut reg = DbRegistry::new(d.join("dbs"));
        let text = "1: (a, e, g)(b)\n2: (b)(d, f)\n";
        let entry = reg.register_upload("t1", text.as_bytes(), true).unwrap();
        assert_eq!(entry.rows, 2);
        let db = SequenceDatabase::from_text(text).unwrap();
        assert_eq!(entry.fingerprint, database_fingerprint(&db));

        // The persisted DSCDB1 reloads to the same fingerprint.
        let bytes = std::fs::read(reg.upload_path("t1")).unwrap();
        let mut reg2 = DbRegistry::new(d.join("dbs"));
        let entry2 = reg2.register_upload("t1", &bytes, false).unwrap();
        assert_eq!(entry2.fingerprint, entry.fingerprint);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn duplicate_and_invalid_names_are_refused() {
        let d = dir("names");
        let mut reg = DbRegistry::new(d.join("dbs"));
        reg.register_upload("ok-name_1", b"1: (a)\n", false).unwrap();
        assert!(matches!(
            reg.register_upload("ok-name_1", b"1: (a)\n", false),
            Err(RegisterError::Conflict(_))
        ));
        for bad in ["", "has space", "a/b", ".hidden", &"x".repeat(65)] {
            assert!(
                matches!(
                    reg.register_upload(bad, b"1: (a)\n", false),
                    Err(RegisterError::Disc(DiscError::Config { .. }))
                ),
                "name {bad:?} should be rejected"
            );
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn attach_flat_file_restores_original_items() {
        let d = dir("attach");
        let text = "1: (1000)(2000)\n2: (1000)\n";
        let db = SequenceDatabase::from_text(text).unwrap();
        let flat = d.join("db.dscfd");
        disc_core::write_flat_file(&flat, &disc_core::encode_database_flat_file(&db)).unwrap();

        let mut reg = DbRegistry::new(d.join("dbs"));
        let entry = reg.register_attach("flat", &flat).unwrap();
        assert_eq!(entry.rows, 2);
        // Items come back in original (sparse) ids, so patterns rendered
        // from this entry match a direct text mine.
        let restored = entry.db.sequence(0).to_string();
        assert_eq!(restored, "(1000)(2000)");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn attaching_a_missing_or_garbage_path_is_a_typed_error() {
        let d = dir("badattach");
        let mut reg = DbRegistry::new(d.join("dbs"));
        assert!(matches!(
            reg.register_attach("gone", &d.join("nope.dscfd")),
            Err(RegisterError::Disc(_))
        ));
        let garbage = d.join("garbage.dscfd");
        std::fs::write(&garbage, b"not a flat file at all").unwrap();
        assert!(matches!(reg.register_attach("bad", &garbage), Err(RegisterError::Disc(_))));
        let _ = std::fs::remove_dir_all(&d);
    }
}
