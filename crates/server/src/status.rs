//! [`DiscError`] → HTTP status mapping, in parity with the `disc-mine`
//! exit-code contract.
//!
//! The CLI distinguishes four outcomes: `0` success, `2` usage error,
//! `1` permanent failure, `75` (`EX_TEMPFAIL`) transient failure. The
//! server maps the same classification onto HTTP:
//!
//! | exit code | meaning            | HTTP                              |
//! |-----------|--------------------|-----------------------------------|
//! | 0         | success            | 2xx                               |
//! | 2         | usage error        | 400 Bad Request                   |
//! | 1         | permanent failure  | 422 Unprocessable Entity          |
//! | 75        | transient failure  | 503 Service Unavailable + Retry-After |
//!
//! Transience is decided by the same [`DiscError::is_transient`] predicate
//! the CLI uses for exit 75, so a supervisor watching either interface sees
//! one consistent retry contract.

use crate::http::{json_escape, Response};
use crate::limits::QuotaDenial;
use disc_core::DiscError;

/// The fallback `Retry-After` value (seconds) for 503s that carry no load
/// estimate. Transient faults here are `EINTR`/`EAGAIN`-class: already
/// retried with backoff once by the IO layer, so a short client-side pause
/// is enough. Load sheds compute a real value from the backlog instead —
/// see [`crate::limits::retry_after_secs`] and [`shed_response`].
pub const RETRY_AFTER_SECS: u32 = 1;

/// The HTTP status for a [`DiscError`], per the table above.
pub fn status_for(err: &DiscError) -> u16 {
    if err.is_transient() {
        return 503;
    }
    match err {
        // A bad flag/option value is the HTTP analogue of the CLI's usage
        // exit (2): the request itself is wrong, not the data it names.
        DiscError::Config { .. } => 400,
        // Malformed uploads and corrupt/mismatched on-disk state are
        // permanent (exit 1): retrying the identical request cannot help,
        // but the request was syntactically fine.
        _ => 422,
    }
}

/// Builds the error response for `err`: the mapped status, a JSON body
/// carrying the rendered message and the transience flag, and
/// `Retry-After` on 503s.
pub fn error_response(err: &DiscError) -> Response {
    let status = status_for(err);
    let body = format!(
        "{{\"error\":\"{}\",\"transient\":{}}}",
        json_escape(&err.to_string()),
        err.is_transient()
    );
    let resp = Response::json(status, body);
    if status == 503 {
        resp.with_header("Retry-After", RETRY_AFTER_SECS.to_string())
    } else {
        resp
    }
}

/// A bare-message error response for failures that never came from a
/// [`DiscError`] (unknown routes, bad parameters, conflicts).
pub fn plain_error(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(message)))
}

/// The load-shed response: 503 with a `Retry-After` computed from the
/// observed backlog (queued connections + queued/running jobs) instead of
/// the hardcoded fallback — a saturated server tells clients to stay away
/// longer than a momentarily busy one.
pub fn shed_response(retry_after_secs: u32) -> Response {
    Response::json(
        503,
        format!(
            "{{\"error\":\"server overloaded\",\"transient\":true,\"retry_after\":{retry_after_secs}}}"
        ),
    )
    .with_header("Retry-After", retry_after_secs.to_string())
}

/// The typed 429 for a quota refusal: the body names which quota tripped
/// (`rate`, `concurrency`, `cumulative_ops`) so clients can distinguish
/// "back off briefly" from "your budget is spent", and `Retry-After` is
/// attached only where waiting actually helps.
pub fn quota_response(denial: &QuotaDenial) -> Response {
    let body = format!(
        "{{\"error\":\"{}\",\"quota\":\"{}\",\"transient\":{}}}",
        json_escape(&denial.message()),
        denial.kind(),
        denial.retry_after_secs().is_some(),
    );
    let resp = Response::json(429, body);
    match denial.retry_after_secs() {
        Some(secs) => resp.with_header("Retry-After", secs.to_string()),
        None => resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{CheckpointError, ParseError};
    use std::path::PathBuf;

    #[test]
    fn transient_io_maps_to_503_with_retry_after() {
        let err = DiscError::Io {
            path: PathBuf::from("/x"),
            message: "interrupted".into(),
            transient: true,
        };
        assert_eq!(status_for(&err), 503);
        let resp = error_response(&err);
        assert!(resp.headers.iter().any(|(n, v)| *n == "Retry-After" && v == "1"));
    }

    #[test]
    fn usage_class_errors_map_to_400() {
        let err = DiscError::Config { option: "minsup".into(), reason: "not a number".into() };
        assert_eq!(status_for(&err), 400);
    }

    #[test]
    fn permanent_data_errors_map_to_422() {
        assert_eq!(status_for(&DiscError::Parse(ParseError::UnexpectedEnd)), 422);
        assert_eq!(
            status_for(&DiscError::Io {
                path: PathBuf::from("/x"),
                message: "no space".into(),
                transient: false,
            }),
            422
        );
        // A transient checkpoint IO error still rides the 503 path.
        let err = DiscError::Checkpoint(CheckpointError::Io {
            path: PathBuf::from("/x"),
            message: "interrupted".into(),
            transient: true,
        });
        assert_eq!(status_for(&err), 503);
    }

    #[test]
    fn shed_responses_carry_the_computed_retry_after() {
        let resp = shed_response(17);
        assert_eq!(resp.status, 503);
        assert!(resp.headers.iter().any(|(n, v)| *n == "Retry-After" && v == "17"));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"retry_after\":17"));
        assert!(body.contains("\"transient\":true"));
    }

    #[test]
    fn quota_responses_are_typed_per_denial() {
        use std::time::Duration;
        let resp = quota_response(&QuotaDenial::Rate { retry_after: Duration::from_secs(2) });
        assert_eq!(resp.status, 429);
        assert!(resp.headers.iter().any(|(n, v)| *n == "Retry-After" && v == "2"));
        assert!(String::from_utf8(resp.body).unwrap().contains("\"quota\":\"rate\""));

        let resp = quota_response(&QuotaDenial::CumulativeOps { limit: 5, spent: 9 });
        assert_eq!(resp.status, 429);
        assert!(resp.headers.iter().all(|(n, _)| *n != "Retry-After"), "spent budget: no retry");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"quota\":\"cumulative_ops\""));
        assert!(body.contains("\"transient\":false"));
    }
}
