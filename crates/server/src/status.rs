//! [`DiscError`] → HTTP status mapping, in parity with the `disc-mine`
//! exit-code contract.
//!
//! The CLI distinguishes four outcomes: `0` success, `2` usage error,
//! `1` permanent failure, `75` (`EX_TEMPFAIL`) transient failure. The
//! server maps the same classification onto HTTP:
//!
//! | exit code | meaning            | HTTP                              |
//! |-----------|--------------------|-----------------------------------|
//! | 0         | success            | 2xx                               |
//! | 2         | usage error        | 400 Bad Request                   |
//! | 1         | permanent failure  | 422 Unprocessable Entity          |
//! | 75        | transient failure  | 503 Service Unavailable + Retry-After |
//!
//! Transience is decided by the same [`DiscError::is_transient`] predicate
//! the CLI uses for exit 75, so a supervisor watching either interface sees
//! one consistent retry contract.

use crate::http::{json_escape, Response};
use disc_core::DiscError;

/// The `Retry-After` value (seconds) sent with every 503. Transient faults
/// here are `EINTR`/`EAGAIN`-class: already retried with backoff once by
/// the IO layer, so a short client-side pause is enough.
pub const RETRY_AFTER_SECS: u32 = 1;

/// The HTTP status for a [`DiscError`], per the table above.
pub fn status_for(err: &DiscError) -> u16 {
    if err.is_transient() {
        return 503;
    }
    match err {
        // A bad flag/option value is the HTTP analogue of the CLI's usage
        // exit (2): the request itself is wrong, not the data it names.
        DiscError::Config { .. } => 400,
        // Malformed uploads and corrupt/mismatched on-disk state are
        // permanent (exit 1): retrying the identical request cannot help,
        // but the request was syntactically fine.
        _ => 422,
    }
}

/// Builds the error response for `err`: the mapped status, a JSON body
/// carrying the rendered message and the transience flag, and
/// `Retry-After` on 503s.
pub fn error_response(err: &DiscError) -> Response {
    let status = status_for(err);
    let body = format!(
        "{{\"error\":\"{}\",\"transient\":{}}}",
        json_escape(&err.to_string()),
        err.is_transient()
    );
    let resp = Response::json(status, body);
    if status == 503 {
        resp.with_header("Retry-After", RETRY_AFTER_SECS.to_string())
    } else {
        resp
    }
}

/// A bare-message error response for failures that never came from a
/// [`DiscError`] (unknown routes, bad parameters, conflicts).
pub fn plain_error(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(message)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{CheckpointError, ParseError};
    use std::path::PathBuf;

    #[test]
    fn transient_io_maps_to_503_with_retry_after() {
        let err = DiscError::Io {
            path: PathBuf::from("/x"),
            message: "interrupted".into(),
            transient: true,
        };
        assert_eq!(status_for(&err), 503);
        let resp = error_response(&err);
        assert!(resp.headers.iter().any(|(n, v)| *n == "Retry-After" && v == "1"));
    }

    #[test]
    fn usage_class_errors_map_to_400() {
        let err = DiscError::Config { option: "minsup".into(), reason: "not a number".into() };
        assert_eq!(status_for(&err), 400);
    }

    #[test]
    fn permanent_data_errors_map_to_422() {
        assert_eq!(status_for(&DiscError::Parse(ParseError::UnexpectedEnd)), 422);
        assert_eq!(
            status_for(&DiscError::Io {
                path: PathBuf::from("/x"),
                message: "no space".into(),
                transient: false,
            }),
            422
        );
        // A transient checkpoint IO error still rides the 503 path.
        let err = DiscError::Checkpoint(CheckpointError::Io {
            path: PathBuf::from("/x"),
            message: "interrupted".into(),
            transient: true,
        });
        assert_eq!(status_for(&err), 503);
    }
}
