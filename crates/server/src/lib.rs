//! disc-server: mining-as-a-service over the DISC engine.
//!
//! A long-lived, multi-tenant job server exposing the guarded, resumable
//! miners of `disc-algo` over a hand-rolled HTTP/1.1 API — std-only, like
//! the rest of the workspace. The moving parts:
//!
//! * [`registry`] — named databases (uploads or attached flat files /
//!   durable stores), with the CLI's item-compaction precomputed so server
//!   results stay byte-identical to `disc-mine`;
//! * [`job`] — one submitted query, mined as a sequence of budget-bounded
//!   **slices** that preempt at checkpoint boundaries;
//! * [`scheduler`] — round-robin fair scheduling of slices over one shared
//!   `ParallelExecutor` pool, with per-tenant accounting;
//! * [`cache`] — an LRU result cache keyed by (database fingerprint, δ,
//!   algorithm, mode), so a repeat query never re-mines;
//! * [`api`] — the [`Server`]: routing, manifest persistence,
//!   and the graceful drain that checkpoints in-flight jobs so a restart
//!   resumes them bit-identically;
//! * [`limits`] — admission control: the bounded connection pool and
//!   accept queue, per-request byte caps and deadlines, load-aware
//!   `Retry-After`, and per-tenant quotas (token-bucket rates,
//!   concurrency and cumulative-ops ceilings);
//! * [`chaos`] — the deterministic network-fault harness: a seeded
//!   [`ChaosStream`] wrapper injecting drops, partial transfers, stalls,
//!   and resets, reproducibly per seed;
//! * [`status`] — the `DiscError` → HTTP status mapping, kept in lockstep
//!   with the CLI's exit-code contract;
//! * [`signal`] — SIGTERM → drain flag, no libc dependency.
//!
//! See `ALGORITHM.md` §16 for the job lifecycle and the preemption-point
//! argument, §17 for the overload model, and the README's serving section
//! for a curl walkthrough.

#![deny(unsafe_code)] // signal::sys carries the one module-scoped allow

pub mod api;
pub mod cache;
pub mod chaos;
pub mod http;
pub mod job;
pub mod limits;
pub mod registry;
pub mod scheduler;
pub mod signal;
pub mod status;

pub use api::{Server, ServerConfig};
pub use cache::{CacheKey, RenderedResult, ResultCache};
pub use chaos::{ChaosConfig, ChaosLedger, ChaosStream};
pub use job::{Job, JobSpec, JobState};
pub use limits::{LimitsConfig, QuotaConfig, QuotaDenial, RateLimit};
pub use registry::{DbRegistry, RegisterError};
pub use scheduler::{AdmissionPermit, Scheduler, SchedulerConfig, TenantSpend};
