//! Deterministic network-chaos injection: a seeded [`ChaosStream`] wrapper
//! that makes sockets misbehave on purpose.
//!
//! This generalizes the `IoFault` discipline of `disc-core::guard` (which
//! targets *file* writers at exact write indices) to *network* streams,
//! where the interesting failures are probabilistic but must still replay
//! exactly: every fault decision is drawn from a splitmix64 stream derived
//! from a config seed, so the same seed over the same traffic injects the
//! same faults in the same places. That determinism is what lets the CI
//! `chaos-smoke` job assert byte-identical mining results *through* the
//! faults — any divergence is a real retry/idempotency bug, not noise.
//!
//! Fault classes, each with an independent per-mille probability checked
//! per I/O call:
//!
//! * **partial read/write** — the call transfers a strict prefix of the
//!   requested bytes (exercises short-read/short-write loops);
//! * **stall** — the call sleeps briefly first (exercises deadlines; kept
//!   well under test timeouts);
//! * **reset** — the call fails with `ConnectionReset` (mid-body resets);
//! * **drop** — reads observe EOF (`Ok(0)`), writes fail with
//!   `BrokenPipe`, and the stream stays dead (connection loss).
//!
//! The wrapper is generic over `Read + Write`, so it serves both sides:
//! the server can wrap accepted connections (`--chaos-seed`) and the
//! client in `disc-client` can wrap its outbound sockets. Both ends only
//! ever see ordinary `std::io` errors — exactly what a flaky network
//! produces — so everything downstream must already cope.

use std::io::{Error, ErrorKind, Read, Result, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Probabilities (per mille, i.e. `n` in 1000 per call) and magnitudes of
/// injected faults, plus the seed that makes them reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Root seed; every wrapped stream derives its own RNG from this.
    pub seed: u64,
    /// Per-mille chance a read transfers only a prefix of the buffer.
    pub partial_read: u16,
    /// Per-mille chance a write accepts only a prefix of the buffer.
    pub partial_write: u16,
    /// Per-mille chance a call sleeps `stall` first.
    pub stall: u16,
    /// Per-mille chance a call fails with `ConnectionReset`.
    pub reset: u16,
    /// Per-mille chance the connection goes permanently dead.
    pub drop: u16,
    /// Sleep injected by a stall fault.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// The preset used by tests and the CI chaos-smoke job: frequent
    /// partial transfers, occasional stalls and resets, rare full drops.
    /// Aggressive enough that a multi-request session virtually always
    /// sees faults, gentle enough that a retrying client converges fast.
    pub fn moderate(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            partial_read: 150,
            partial_write: 150,
            stall: 40,
            reset: 25,
            drop: 8,
            stall_ms: 20,
        }
    }

    /// The preset for wrapping the *server* side of connections
    /// (`--chaos-seed` on `disc-mine serve`). Much lower error rates than
    /// [`ChaosConfig::moderate`] because the server's request parser reads
    /// the head byte-at-a-time: every byte is a fault roll, so a ~60-byte
    /// head sees ~60 rolls where the client's message-granular I/O sees a
    /// handful. At 2‰ reset / 1‰ drop a head still fails a few percent of
    /// the time — faults fire every session — without starving a client of
    /// its whole retry budget on a single request.
    pub fn light(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            partial_read: 100,
            partial_write: 100,
            stall: 5,
            reset: 2,
            drop: 1,
            stall_ms: 10,
        }
    }

    /// A seed for the `index`-th connection under this config: mixes the
    /// connection ordinal through splitmix64 so per-connection fault
    /// streams are decorrelated but still a pure function of (seed, index).
    pub fn connection_seed(&self, index: u64) -> u64 {
        self.seed ^ splitmix64(index.wrapping_add(0x5EED))
    }
}

/// One splitmix64 step — the workspace's standard tiny deterministic RNG
/// (same generator as `guard::RetryPolicy` jitter and the bench harness).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter shared by every stream derived from one harness, so tests can
/// assert that faults actually fired (a chaos run with zero injections
/// proves nothing).
#[derive(Debug, Default)]
pub struct ChaosLedger {
    injected: AtomicU64,
}

impl ChaosLedger {
    /// Total faults injected across all streams sharing this ledger.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn record(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

/// A `Read + Write` stream that misbehaves deterministically per
/// [`ChaosConfig`]. Construct with [`ChaosStream::new`] per connection,
/// deriving the seed via [`ChaosConfig::connection_seed`].
pub struct ChaosStream<'a, S> {
    inner: S,
    cfg: ChaosConfig,
    rng: u64,
    dead: bool,
    ledger: Option<&'a ChaosLedger>,
}

impl<'a, S: Read + Write> ChaosStream<'a, S> {
    /// Wraps `inner` with the fault plan of `cfg`, drawing decisions from
    /// `seed` (use [`ChaosConfig::connection_seed`] so parallel
    /// connections get distinct but reproducible streams).
    pub fn new(inner: S, cfg: ChaosConfig, seed: u64) -> ChaosStream<'a, S> {
        ChaosStream { inner, cfg, rng: seed, dead: false, ledger: None }
    }

    /// Attaches a shared fault counter (for assertions that chaos fired).
    pub fn with_ledger(mut self, ledger: &'a ChaosLedger) -> ChaosStream<'a, S> {
        self.ledger = Some(ledger);
        self
    }

    /// The wrapped stream, for operations chaos does not intercept (e.g.
    /// `set_read_timeout` on a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn next(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    /// Rolls one per-mille check.
    fn roll(&mut self, per_mille: u16) -> bool {
        u16::try_from(self.next() % 1000).expect("mod 1000 fits u16") < per_mille
    }

    fn record(&self) {
        if let Some(ledger) = self.ledger {
            ledger.record();
        }
    }

    /// Pre-call fault gate shared by reads and writes: returns an error to
    /// surface immediately, `Ok(true)` if the call should proceed but
    /// truncated, `Ok(false)` to proceed untouched. `partial` is the
    /// direction's partial-transfer probability.
    fn gate(&mut self, partial: u16, on_dead: fn() -> Result<usize>) -> Result<bool> {
        if self.dead {
            return on_dead().map(|_| false);
        }
        if self.roll(self.cfg.drop) {
            self.dead = true;
            self.record();
            return on_dead().map(|_| false);
        }
        if self.roll(self.cfg.reset) {
            self.record();
            return Err(Error::new(ErrorKind::ConnectionReset, "chaos: injected reset"));
        }
        if self.roll(self.cfg.stall) {
            self.record();
            std::thread::sleep(Duration::from_millis(self.cfg.stall_ms));
        }
        Ok(self.roll(partial))
    }
}

fn dead_read() -> Result<usize> {
    Ok(0) // a dropped peer looks like EOF to the reader
}

fn dead_write() -> Result<usize> {
    Err(Error::new(ErrorKind::BrokenPipe, "chaos: connection dropped"))
}

impl<S: Read + Write> Read for ChaosStream<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let truncate = self.gate(self.cfg.partial_read, dead_read)?;
        if self.dead {
            return Ok(0);
        }
        if truncate && buf.len() > 1 {
            let keep = 1 + (self.next() as usize) % (buf.len() - 1);
            self.record();
            return self.inner.read(&mut buf[..keep]);
        }
        self.inner.read(buf)
    }
}

impl<S: Read + Write> Write for ChaosStream<'_, S> {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let truncate = self.gate(self.cfg.partial_write, dead_write)?;
        if self.dead {
            return dead_write();
        }
        if truncate && buf.len() > 1 {
            let keep = 1 + (self.next() as usize) % (buf.len() - 1);
            self.record();
            return self.inner.write(&buf[..keep]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> Result<()> {
        if self.dead {
            return Err(Error::new(ErrorKind::BrokenPipe, "chaos: connection dropped"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory Read+Write stand-in for a socket.
    struct MemStream {
        rx: Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl MemStream {
        fn preloaded(data: &[u8]) -> MemStream {
            MemStream { rx: Cursor::new(data.to_vec()), tx: Vec::new() }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
    }

    fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            partial_read: 0,
            partial_write: 0,
            stall: 0,
            reset: 0,
            drop: 0,
            stall_ms: 0,
        }
    }

    #[test]
    fn zero_probabilities_are_a_transparent_wrapper() {
        let inner = MemStream::preloaded(b"hello chaos");
        let ledger = ChaosLedger::default();
        let mut s = ChaosStream::new(inner, quiet(7), 7).with_ledger(&ledger);
        let mut buf = [0u8; 32];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello chaos");
        s.write_all(b"response").unwrap();
        s.flush().unwrap();
        assert_eq!(s.inner.tx, b"response");
        assert_eq!(ledger.injected(), 0);
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let cfg = ChaosConfig::moderate(42);
        let run = |seed: u64| -> (Vec<std::result::Result<usize, ErrorKind>>, Vec<u8>) {
            let inner = MemStream::preloaded(&[0xAB; 4096]);
            let mut s = ChaosStream::new(inner, cfg, seed);
            let mut log = Vec::new();
            let mut buf = [0u8; 64];
            for _ in 0..200 {
                log.push(s.read(&mut buf).map_err(|e| e.kind()));
                log.push(s.write(&[0xCD; 64]).map_err(|e| e.kind()));
            }
            (log, s.inner.tx)
        };
        let seed = cfg.connection_seed(0);
        let (log_a, tx_a) = run(seed);
        let (log_b, tx_b) = run(seed);
        assert_eq!(log_a, log_b, "identical seeds replay identical fault traces");
        assert_eq!(tx_a, tx_b);
        let (log_c, _) = run(cfg.connection_seed(1));
        assert_ne!(log_a, log_c, "distinct connections draw distinct fault streams");
    }

    #[test]
    fn moderate_preset_actually_injects_faults() {
        let cfg = ChaosConfig::moderate(3);
        let ledger = ChaosLedger::default();
        let inner = MemStream::preloaded(&[1u8; 1 << 16]);
        let mut s = ChaosStream::new(inner, cfg, cfg.connection_seed(0)).with_ledger(&ledger);
        let mut buf = [0u8; 128];
        let mut outcomes = 0u32;
        for _ in 0..400 {
            match s.read(&mut buf) {
                Ok(0) => break, // dropped or exhausted
                Ok(_) => outcomes += 1,
                Err(_) => outcomes += 1,
            }
        }
        assert!(outcomes > 0);
        assert!(ledger.injected() > 0, "moderate preset must fire within 400 calls");
    }

    #[test]
    fn a_dropped_stream_stays_dead() {
        let cfg = ChaosConfig {
            drop: 1000, // first call kills the connection
            ..ChaosConfig::moderate(9)
        };
        let inner = MemStream::preloaded(b"unreachable");
        let mut s = ChaosStream::new(inner, cfg, 9);
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "reads see EOF");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "and keep seeing EOF");
        let kind = s.write(b"x").unwrap_err().kind();
        assert_eq!(kind, ErrorKind::BrokenPipe, "writes fail permanently");
        assert_eq!(s.flush().unwrap_err().kind(), ErrorKind::BrokenPipe);
    }

    #[test]
    fn partial_reads_deliver_a_strict_prefix() {
        let cfg = ChaosConfig {
            partial_read: 1000,
            partial_write: 0,
            stall: 0,
            reset: 0,
            drop: 0,
            stall_ms: 0,
            seed: 11,
        };
        let inner = MemStream::preloaded(&[7u8; 1024]);
        let mut s = ChaosStream::new(inner, cfg, 11);
        let mut buf = [0u8; 256];
        let n = s.read(&mut buf).unwrap();
        assert!((1..256).contains(&n), "partial read is a non-empty strict prefix, got {n}");
    }
}
