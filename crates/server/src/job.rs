//! The `Job` abstraction: one submitted mining query, from queue to
//! rendered result.
//!
//! A job runs as a sequence of **slices**. Each slice is a guarded
//! `Resumable` run with an operations budget just above the job's
//! accumulated spend; when the budget trips, the miner checkpoints at the
//! current partition boundary and the job goes back in the queue — that is
//! the preemption point the fair scheduler multiplexes on. The checkpoint
//! layer guarantees a resumed job produces results bit-identical to an
//! uninterrupted run, so slicing is invisible in the output.
//!
//! Status reads never touch the mining thread's `MineGuard` (deliberately
//! not `Sync`): each slice publishes into its own
//! [`SharedCounters`], and `/jobs/:id` snapshots those through
//! [`disc_core::ResourceBudget::snapshot`]. Because a resumed slice
//! re-charges the snapshot's cumulative spend before mining on, the live
//! slice counters approximate the job's total spend from below — the same
//! totals budgets are enforced against.

use crate::cache::RenderedResult;
use disc_core::{BudgetSnapshot, CancelToken, ResourceBudget, SharedCounters, SnapshotProgress};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a scheduler slot (fresh, or preempted with a checkpoint).
    Queued,
    /// A slice is mining right now.
    Running,
    /// Finished; the rendered result is available.
    Done,
    /// Failed permanently (budget cap, deadline, data error).
    Failed,
    /// Cancelled by the tenant.
    Cancelled,
}

impl JobState {
    /// The lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can still change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The immutable submission parameters of a job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id (server-assigned, monotonic).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Registered database name.
    pub db: String,
    /// Resolved minimum-support count δ.
    pub delta: u64,
    /// Algorithm: `disc-all`, `dynamic`, `parallel`, or `auto` (a
    /// `FallbackMiner` chain ending in the sequential baseline).
    pub algo: String,
    /// Result projection: `all`, `closed`, `maximal`.
    pub mode: String,
    /// Hard cap on guard operations for the whole job (tenant budget).
    pub max_ops: Option<u64>,
    /// Hard cap on patterns for the whole job (tenant budget).
    pub max_patterns: Option<usize>,
    /// Wall-clock deadline for the whole job, from submission.
    pub deadline: Option<Duration>,
    /// Skip the result cache (read and write) for this job.
    pub no_cache: bool,
}

impl JobSpec {
    /// The job-wide budget — what `/jobs/:id` reports remaining spend
    /// against, and what slices are capped by.
    pub fn budget(&self) -> ResourceBudget {
        let mut b = ResourceBudget::unlimited();
        if let Some(ops) = self.max_ops {
            b = b.with_max_ops(ops);
        }
        if let Some(p) = self.max_patterns {
            b = b.with_max_patterns(p);
        }
        if let Some(d) = self.deadline {
            b = b.with_deadline(d);
        }
        b
    }
}

/// A terminal failure, with the transience bit the status mapping needs.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Human-readable cause.
    pub message: String,
    /// Whether a retry of the same submission might succeed.
    pub transient: bool,
}

/// The mutable half of a job, behind one mutex.
pub struct JobInner {
    /// Lifecycle state.
    pub state: JobState,
    /// Counters the current slice publishes into (`None` between slices).
    pub live: Option<Arc<SharedCounters>>,
    /// Cancel token of the current slice (`None` between slices).
    pub slice_token: Option<CancelToken>,
    /// Spend recorded after the last finished slice (includes the
    /// checkpoint re-charge, i.e. cumulative for the job).
    pub ops: u64,
    /// Patterns noted after the last finished slice.
    pub patterns: usize,
    /// Slices run so far.
    pub slices: u32,
    /// Times the job was preempted at a checkpoint boundary and requeued.
    pub preemptions: u32,
    /// The per-slice operations increment; doubled when a slice makes no
    /// boundary progress, so re-derivation cost can never starve a job.
    pub slice_ops: u64,
    /// Progress peeked from the checkpoint after the last slice.
    pub progress: Option<SnapshotProgress>,
    /// The rendered result once `Done`.
    pub result: Option<Arc<RenderedResult>>,
    /// The failure once `Failed`.
    pub error: Option<JobError>,
    /// Whether the result came straight from the cache (no mining).
    pub from_cache: bool,
}

/// A submitted job. Shared between the API (status/cancel) and the
/// scheduler (slicing); all mutation goes through `inner`.
pub struct Job {
    /// Submission parameters.
    pub spec: JobSpec,
    /// Submission time — the job deadline's clock.
    pub submitted: Instant,
    /// Mutable state.
    pub inner: Mutex<JobInner>,
}

impl Job {
    /// A fresh queued job.
    pub fn new(spec: JobSpec, initial_slice_ops: u64) -> Job {
        Job {
            spec,
            submitted: Instant::now(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                live: None,
                slice_token: None,
                ops: 0,
                patterns: 0,
                slices: 0,
                preemptions: 0,
                slice_ops: initial_slice_ops.max(1),
                progress: None,
                result: None,
                error: None,
                from_cache: false,
            }),
        }
    }

    /// A job born `Done` from a cache hit — no slice ever runs.
    pub fn from_cache(spec: JobSpec, result: Arc<RenderedResult>) -> Job {
        let job = Job::new(spec, 1);
        {
            let mut inner = job.inner.lock().unwrap();
            inner.state = JobState::Done;
            inner.result = Some(result);
            inner.from_cache = true;
        }
        job
    }

    /// Requests cancellation: terminal states are left alone, a queued job
    /// dies immediately, a running slice is cancelled cooperatively (the
    /// scheduler settles the state when the slice returns). Returns whether
    /// the request changed anything.
    pub fn cancel(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            JobState::Done | JobState::Failed | JobState::Cancelled => false,
            JobState::Queued => {
                inner.state = JobState::Cancelled;
                true
            }
            JobState::Running => {
                // Mark first, then trip the token: when the slice aborts the
                // scheduler distinguishes tenant-cancel from drain-preempt by
                // this state.
                inner.state = JobState::Cancelled;
                if let Some(token) = &inner.slice_token {
                    token.cancel();
                }
                true
            }
        }
    }

    /// A point-in-time spend snapshot for `/jobs/:id`, built from the live
    /// slice's published counters while mining and from the recorded totals
    /// between slices — never from the mining thread's guard.
    pub fn budget_snapshot(&self) -> BudgetSnapshot {
        let budget = self.spec.budget();
        let elapsed = self.submitted.elapsed();
        let inner = self.inner.lock().unwrap();
        match &inner.live {
            Some(counters) => budget.snapshot(counters, elapsed),
            None => {
                let ops = inner.ops;
                let patterns = inner.patterns;
                BudgetSnapshot {
                    ops,
                    patterns,
                    elapsed,
                    ops_remaining: self.spec.max_ops.map(|m| m.saturating_sub(ops)),
                    patterns_remaining: self.spec.max_patterns.map(|m| m.saturating_sub(patterns)),
                    deadline_remaining: self.spec.deadline.map(|d| d.saturating_sub(elapsed)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: 1,
            tenant: "t".into(),
            db: "d".into(),
            delta: 2,
            algo: "disc-all".into(),
            mode: "all".into(),
            max_ops: Some(100),
            max_patterns: None,
            deadline: None,
            no_cache: false,
        }
    }

    #[test]
    fn cancel_settles_queued_jobs_and_is_idempotent() {
        let job = Job::new(spec(), 500);
        assert!(job.cancel());
        assert_eq!(job.inner.lock().unwrap().state, JobState::Cancelled);
        assert!(!job.cancel(), "second cancel is a no-op");
    }

    #[test]
    fn cancel_trips_the_running_slice_token() {
        let job = Job::new(spec(), 500);
        let token = CancelToken::new();
        {
            let mut inner = job.inner.lock().unwrap();
            inner.state = JobState::Running;
            inner.slice_token = Some(token.clone());
        }
        assert!(job.cancel());
        assert!(token.is_cancelled());
    }

    #[test]
    fn idle_snapshot_reports_recorded_totals_against_the_cap() {
        let job = Job::new(spec(), 500);
        {
            let mut inner = job.inner.lock().unwrap();
            inner.ops = 30;
            inner.patterns = 4;
        }
        let snap = job.budget_snapshot();
        assert_eq!(snap.ops, 30);
        assert_eq!(snap.patterns, 4);
        assert_eq!(snap.ops_remaining, Some(70));
        assert_eq!(snap.patterns_remaining, None);
    }

    #[test]
    fn cache_hit_jobs_are_born_done() {
        let result = Arc::new(RenderedResult { lines: vec![], total_patterns: 0 });
        let job = Job::from_cache(spec(), result);
        let inner = job.inner.lock().unwrap();
        assert_eq!(inner.state, JobState::Done);
        assert!(inner.from_cache);
    }
}
