//! The server: TCP accept loop, bounded handler pool, request routing,
//! manifest persistence, and graceful drain.
//!
//! ## Endpoints
//!
//! | method & path            | action                                        |
//! |--------------------------|-----------------------------------------------|
//! | `GET /healthz`           | liveness                                      |
//! | `GET /readyz`            | readiness (503 + `Retry-After` when draining or saturated) |
//! | `GET /stats`             | cache/miner/job counters                      |
//! | `POST /dbs?name=N`       | register database (body upload, or `attach=PATH`) |
//! | `GET /dbs`, `GET /dbs/N` | list / inspect databases                      |
//! | `POST /jobs?db=N&...`    | submit a mining job (cache-served when possible) |
//! | `GET /jobs`, `GET /jobs/I` | list / poll jobs (budget snapshot, progress) |
//! | `GET /jobs/I/result`     | fetch result lines (`offset`/`limit`/`min_length`) |
//! | `POST /jobs/I/cancel`, `DELETE /jobs/I` | cancel                         |
//! | `GET /tenants`           | per-tenant spend                              |
//! | `GET /admin/stats`       | overload snapshot (sheds, queue depth, quota denials) |
//! | `POST /admin/drain`      | graceful drain (same path as SIGTERM)         |
//!
//! ## Admission
//!
//! No thread is ever spawned per connection: accepted sockets enter a
//! bounded [`ConnQueue`] drained by a fixed pool of
//! [`LimitsConfig::max_connections`] handler threads. A socket arriving at
//! a full queue is shed with one 503 whose `Retry-After` is computed from
//! the observed backlog ([`crate::limits::retry_after_secs`]) — never the
//! old hardcoded `1`. Accepted sockets get per-read deadlines before any
//! byte is parsed, and the parser enforces an absolute per-request budget
//! ([`crate::limits::LimitsConfig::request_deadline`]) on top — so a
//! slow-loris client, whether fully silent or trickling bytes to renew
//! the per-read timer, holds a handler thread for at most the request
//! deadline plus one in-flight read before its 408. Per-request byte caps
//! refuse oversized heads/bodies with 413 before buffering. Transient
//! `accept()` failures
//! (`EMFILE`/`EINTR`-class) are logged and retried with bounded backoff
//! instead of killing the server. See `ALGORITHM.md` §17.
//!
//! ## Durability
//!
//! The data directory holds everything a restart needs: uploaded databases
//! (`dbs/<name>.dscdb`), per-job checkpoints and results
//! (`jobs/<id>/mine.dscck`, `jobs/<id>/result.tsv`), and a line-based
//! `manifest` (written atomically) recording databases, jobs, and the id
//! counter. On SIGTERM (or `POST /admin/drain`) running slices are
//! cancelled at their next checkpoint boundary, requeue with durable
//! snapshots, and the manifest is written; a restarted server reloads the
//! manifest and the requeued jobs resume from their snapshots —
//! bit-identical to never having been interrupted, by the checkpoint
//! layer's guarantee.

use crate::cache::{CacheKey, RenderedResult};
use crate::chaos::{ChaosConfig, ChaosLedger, ChaosStream};
use crate::http::{json_escape, read_request, HttpError, Request, RequestLimits, Response};
use crate::job::{Job, JobError, JobSpec, JobState};
use crate::limits::{
    is_transient_accept_error, retry_after_secs, AdmissionStats, ConnQueue, LimitsConfig,
};
use crate::registry::{valid_name, DbRegistry, DbSource, RegisterError};
use crate::scheduler::{valid_algo, valid_mode, Scheduler, SchedulerConfig};
use crate::signal;
use crate::status::{error_response, plain_error, quota_response, shed_response};
use disc_core::{DiscError, MinSupport, RetryPolicy};
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7031`. Port 0 picks a free port
    /// (reported by [`Server::local_addr`]).
    pub addr: String,
    /// Root of all persisted state.
    pub data_dir: PathBuf,
    /// Scheduler tuning (including per-tenant quotas).
    pub scheduler: SchedulerConfig,
    /// Result-cache capacity, in entries.
    pub cache_entries: usize,
    /// Default per-job operations cap applied when a submission carries no
    /// `max_ops` — the per-tenant budget backstop.
    pub default_max_ops: Option<u64>,
    /// Network admission limits: pool width, queue depth, byte caps,
    /// deadlines.
    pub limits: LimitsConfig,
    /// When set, every accepted connection is wrapped in a seeded
    /// [`ChaosStream`] — the deterministic network-fault harness. Test/CI
    /// only; never set in production.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: PathBuf::from("disc-server-data"),
            scheduler: SchedulerConfig::default(),
            cache_entries: 64,
            default_max_ops: None,
            limits: LimitsConfig::default(),
            chaos: None,
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    registry: Mutex<DbRegistry>,
    sched: Arc<Scheduler>,
    next_job: AtomicU64,
    started: Instant,
    bound: Mutex<Option<SocketAddr>>,
    /// Serializes manifest writes: concurrent submissions would otherwise
    /// race on the shared `manifest.tmp` staging name.
    manifest_lock: Mutex<()>,
    /// The bounded accept queue feeding the handler pool.
    queue: Arc<ConnQueue>,
    /// Admission counters behind `GET /admin/stats`.
    stats: AdmissionStats,
    /// Fault counter when the chaos harness is active.
    chaos_ledger: ChaosLedger,
    /// Connections ever admitted — the per-connection chaos-seed ordinal.
    conn_ordinal: AtomicU64,
}

/// The mining server. Cheap to clone (shared state behind an `Arc`);
/// construct, then call [`Server::run`] — typically from a dedicated
/// thread, since it blocks until drain.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Builds a server over `cfg.data_dir`, reloading any manifest a
    /// previous process left there.
    pub fn new(cfg: ServerConfig) -> Server {
        let sched = Arc::new(Scheduler::new(
            cfg.scheduler.clone(),
            cfg.data_dir.join("jobs"),
            cfg.cache_entries,
        ));
        let registry = Mutex::new(DbRegistry::new(cfg.data_dir.join("dbs")));
        let queue = Arc::new(ConnQueue::new(cfg.limits.queue_depth));
        let server = Server {
            shared: Arc::new(Shared {
                cfg,
                registry,
                sched,
                next_job: AtomicU64::new(1),
                started: Instant::now(),
                bound: Mutex::new(None),
                manifest_lock: Mutex::new(()),
                queue,
                stats: AdmissionStats::default(),
                chaos_ledger: ChaosLedger::default(),
                conn_ordinal: AtomicU64::new(0),
            }),
        };
        server.load_manifest();
        server
    }

    /// The bound address once [`Server::run`] has bound its listener.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        *self.shared.bound.lock().unwrap()
    }

    /// The scheduler (stats surface for benches and tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.shared.sched
    }

    /// Binds, serves until a drain (SIGTERM or `POST /admin/drain`)
    /// completes, persists the manifest, and returns the ids of the jobs
    /// left queued with checkpoints.
    pub fn run(&self) -> std::io::Result<Vec<u64>> {
        signal::install_termination_flag();
        let listener = TcpListener::bind(&self.shared.cfg.addr)?;
        listener.set_nonblocking(true)?;
        *self.shared.bound.lock().unwrap() = Some(listener.local_addr()?);

        let sched = Arc::clone(&self.shared.sched);
        let sched_thread = std::thread::spawn(move || sched.run_loop());

        // The fixed handler pool: each worker blocks on the bounded queue
        // and serves one connection at a time. Pool width — not arrival
        // rate — bounds concurrent request handling.
        let workers: Vec<_> = (0..self.shared.cfg.limits.max_connections.max(1))
            .map(|_| {
                let server = self.clone();
                std::thread::spawn(move || {
                    while let Some(stream) = server.shared.queue.pop() {
                        server.handle_connection(stream);
                    }
                })
            })
            .collect();

        // Transient accept() failures (EMFILE/EINTR-class) back off and
        // retry with the guard layer's jittered policy instead of killing
        // the listener; only a persistent non-transient failure is fatal.
        let accept_retry = RetryPolicy::default();
        let mut accept_failures: u32 = 0;
        loop {
            if signal::termination_requested() && !self.shared.sched.is_draining() {
                self.shared.sched.drain();
            }
            if self.shared.sched.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_transient_accept_error(&e) => {
                    self.shared.stats.accept_retries.fetch_add(1, Ordering::Relaxed);
                    accept_failures = accept_failures.saturating_add(1);
                    eprintln!(
                        "disc-server: transient accept failure (attempt {accept_failures}): {e}"
                    );
                    // Bounded backoff: fd exhaustion clears as handlers
                    // close connections, so waiting — not exiting — is
                    // the right response.
                    std::thread::sleep(
                        accept_retry.delay(accept_failures.min(8), disc_core::fresh_retry_salt()),
                    );
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: stop admitting, let the pool finish queued connections,
        // then wait for the scheduler loop to checkpoint and requeue its
        // running slices. Then persist the manifest so the next process
        // resumes them.
        self.shared.queue.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        let queued = sched_thread.join().unwrap_or_default();
        self.persist_manifest();
        Ok(queued)
    }

    /// Deadline-stamps an accepted socket and enqueues it for the pool, or
    /// sheds it with a computed `Retry-After` when the queue is full.
    fn admit(&self, stream: TcpStream) {
        let limits = &self.shared.cfg.limits;
        let _ = stream.set_read_timeout(Some(limits.read_timeout));
        let _ = stream.set_write_timeout(Some(limits.write_timeout));
        if let Err(mut rejected) = self.shared.queue.push(stream) {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            shed_response(self.current_retry_after()).send(&mut rejected);
        }
    }

    /// The load-aware `Retry-After`: backlog is everything waiting (queued
    /// connections + queued/running jobs), capacity is what retires it
    /// concurrently (handler pool + mining pool).
    fn current_retry_after(&self) -> u32 {
        let backlog = self.shared.queue.depth() + self.shared.sched.load();
        let capacity = self.shared.cfg.limits.max_connections + self.shared.sched.threads();
        retry_after_secs(backlog, capacity)
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        match self.shared.cfg.chaos {
            Some(chaos) => {
                let ordinal = self.shared.conn_ordinal.fetch_add(1, Ordering::Relaxed);
                let mut wrapped = ChaosStream::new(stream, chaos, chaos.connection_seed(ordinal))
                    .with_ledger(&self.shared.chaos_ledger);
                self.handle_stream(&mut wrapped);
            }
            None => self.handle_stream(&mut stream),
        }
    }

    /// Serves one request over any stream (bare socket or chaos-wrapped).
    /// Every parse failure maps to a typed status; only a vanished peer
    /// gets silence.
    fn handle_stream<S: Read + std::io::Write>(&self, stream: &mut S) {
        let request_limits = RequestLimits {
            max_head_bytes: self.shared.cfg.limits.max_head_bytes,
            max_body_bytes: self.shared.cfg.limits.max_body_bytes,
            request_deadline: self.shared.cfg.limits.request_deadline,
        };
        let response = match read_request(stream, &request_limits) {
            Ok(req) => self.route(&req),
            Err(HttpError::BodyTooLarge(n)) => {
                self.shared.stats.too_large.fetch_add(1, Ordering::Relaxed);
                plain_error(413, &format!("body of {n} bytes exceeds the upload limit"))
            }
            Err(HttpError::HeadTooLarge(n)) => {
                self.shared.stats.too_large.fetch_add(1, Ordering::Relaxed);
                plain_error(413, &format!("request head of {n}+ bytes exceeds the limit"))
            }
            Err(HttpError::Timeout) => {
                self.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                plain_error(408, "request not received within the read deadline")
            }
            Err(HttpError::Malformed(what)) => plain_error(400, what),
            // Response-side only (the client's read_response cap) — the
            // request parser never produces it, but the error type is
            // shared and the server must answer something, not panic.
            Err(HttpError::ResponseTooLarge(_)) => plain_error(500, "unexpected parser state"),
            Err(HttpError::Io(_)) => return, // client went away mid-request
        };
        response.send(stream);
    }

    // ---------------------------------------------------------------
    // Routing.

    fn route(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Response::json(200, "{\"status\":\"ok\"}".into()),
            ("GET", ["readyz"]) => self.get_readyz(),
            ("GET", ["stats"]) => self.get_stats(),
            ("GET", ["admin", "stats"]) => self.get_admin_stats(),
            ("POST", ["dbs"]) => self.post_db(req),
            ("GET", ["dbs"]) => self.list_dbs(),
            ("GET", ["dbs", name]) => self.get_db(name),
            ("POST", ["jobs"]) => self.post_job(req),
            ("GET", ["jobs"]) => self.list_jobs(),
            ("GET", ["jobs", id]) => self.with_job(id, |job| self.job_status(&job)),
            ("GET", ["jobs", id, "result"]) => self.with_job(id, |job| self.job_result(&job, req)),
            ("POST", ["jobs", id, "cancel"]) | ("DELETE", ["jobs", id]) => {
                self.with_job(id, |job| {
                    job.cancel();
                    self.job_status(&job)
                })
            }
            ("GET", ["tenants"]) => self.get_tenants(),
            // Scoped to this server's scheduler (not the process-global
            // signal flag), so co-resident servers — tests, embedders —
            // drain independently.
            ("POST", ["admin", "drain"]) => {
                self.shared.sched.drain();
                Response::json(200, "{\"draining\":true}".into())
            }
            (_, ["healthz" | "readyz" | "stats" | "dbs" | "jobs" | "tenants", ..]) => {
                plain_error(405, "method not allowed on this resource")
            }
            _ => plain_error(404, "no such resource"),
        }
    }

    fn with_job(&self, id: &str, f: impl FnOnce(Arc<Job>) -> Response) -> Response {
        match id.parse::<u64>().ok().and_then(|id| self.shared.sched.job(id)) {
            Some(job) => f(job),
            None => plain_error(404, "no such job"),
        }
    }

    // ---------------------------------------------------------------
    // Databases.

    fn post_db(&self, req: &Request) -> Response {
        let Some(name) = req.param("name") else {
            return plain_error(400, "missing required parameter: name");
        };
        let result = match req.param("attach") {
            Some(path) => {
                self.shared.registry.lock().unwrap().register_attach(name, Path::new(path))
            }
            None => self.shared.registry.lock().unwrap().register_upload(name, &req.body, true),
        };
        match result {
            Ok(entry) => {
                self.persist_manifest();
                Response::json(201, db_json(&entry))
            }
            Err(RegisterError::Conflict(message)) => plain_error(409, &message),
            Err(RegisterError::Disc(e)) => error_response(&e),
        }
    }

    fn list_dbs(&self) -> Response {
        let body: Vec<String> =
            self.shared.registry.lock().unwrap().list().iter().map(|e| db_json(e)).collect();
        Response::json(200, format!("[{}]", body.join(",")))
    }

    fn get_db(&self, name: &str) -> Response {
        match self.shared.registry.lock().unwrap().get(name) {
            Some(entry) => Response::json(200, db_json(&entry)),
            None => plain_error(404, "no such database"),
        }
    }

    // ---------------------------------------------------------------
    // Jobs.

    fn post_job(&self, req: &Request) -> Response {
        let Some(db_name) = req.param("db") else {
            return plain_error(400, "missing required parameter: db");
        };
        let Some(db) = self.shared.registry.lock().unwrap().get(db_name) else {
            return plain_error(404, "no such database");
        };
        let tenant = req.param("tenant").unwrap_or("default");
        if !valid_name(tenant) {
            return bad_param("tenant", "1-64 chars of [A-Za-z0-9._-]");
        }
        // Quota gate before anything expensive — even the cache lookup.
        // The refusal is typed (429, quota name in the body) so clients
        // can tell "back off" from "budget spent". The permit reserves
        // the tenant's concurrency slot until submit() registers the job
        // (it drops at the end of this function), so concurrent
        // submissions cannot slip past the ceiling between check and
        // insert.
        let _permit = match self.shared.sched.admit_job(tenant) {
            Ok(permit) => permit,
            Err(denial) => {
                self.shared.stats.quota_denials.fetch_add(1, Ordering::Relaxed);
                return quota_response(&denial);
            }
        };
        let algo = req.param("algo").unwrap_or("disc-all");
        if !valid_algo(algo) {
            return bad_param("algo", "one of disc-all, dynamic, parallel, auto");
        }
        let mode = req.param("mode").unwrap_or("all");
        if !valid_mode(mode) {
            return bad_param("mode", "one of all, closed, maximal");
        }
        // Threshold: `delta=COUNT` or `minsup=FRACTION` (CLI default 0.01),
        // resolved to δ immediately — the cache key and checkpoint both
        // speak resolved counts.
        let delta = match (req.param("delta"), req.param("minsup")) {
            (Some(_), Some(_)) => {
                return bad_param("minsup", "give either minsup or delta, not both");
            }
            (Some(d), None) => match d.parse::<u64>() {
                Ok(d) => d,
                Err(_) => return bad_param("delta", "not a count"),
            },
            (None, fraction) => {
                let f = match fraction.map(str::parse::<f64>).transpose() {
                    Ok(f) => f.unwrap_or(0.01),
                    Err(_) => return bad_param("minsup", "not a number"),
                };
                if !(0.0..=1.0).contains(&f) {
                    return bad_param("minsup", "must be within [0, 1]");
                }
                MinSupport::Fraction(f).resolve(db.rows)
            }
        };
        let max_ops = match parse_opt::<u64>(req, "max_ops") {
            Ok(v) => v.or(self.shared.cfg.default_max_ops),
            Err(r) => return r,
        };
        let max_patterns = match parse_opt::<usize>(req, "max_patterns") {
            Ok(v) => v,
            Err(r) => return r,
        };
        let deadline = match parse_opt::<u64>(req, "deadline_ms") {
            Ok(v) => v.map(Duration::from_millis),
            Err(r) => return r,
        };

        let spec = JobSpec {
            id: self.shared.next_job.fetch_add(1, Ordering::SeqCst),
            tenant: tenant.to_string(),
            db: db_name.to_string(),
            delta,
            algo: algo.to_string(),
            mode: mode.to_string(),
            max_ops,
            max_patterns,
            deadline,
            no_cache: req.flag("nocache"),
        };

        // Cache first: a repeat query is answered without any miner
        // invocation (the `mine_invocations` counter attests to that).
        let cached = if spec.no_cache {
            None
        } else {
            self.shared.sched.cache.lock().unwrap().get(&CacheKey {
                fingerprint: db.fingerprint,
                delta: spec.delta,
                algo: spec.algo.clone(),
                mode: spec.mode.clone(),
            })
        };
        let (status, job) = match cached {
            Some(result) => {
                let job = Arc::new(Job::from_cache(spec, Arc::clone(&result)));
                self.shared.sched.persist_result(job.spec.id, &result);
                (200, job)
            }
            None => (202, Arc::new(Job::new(spec, self.shared.cfg.scheduler.slice_ops))),
        };
        self.shared.sched.submit(Arc::clone(&job), db);
        self.persist_manifest();
        Response::json(status, self.job_status_json(&job))
    }

    fn list_jobs(&self) -> Response {
        let body: Vec<String> =
            self.shared.sched.list_jobs().iter().map(|j| self.job_status_json(j)).collect();
        Response::json(200, format!("[{}]", body.join(",")))
    }

    fn job_status(&self, job: &Arc<Job>) -> Response {
        Response::json(200, self.job_status_json(job))
    }

    fn job_status_json(&self, job: &Arc<Job>) -> String {
        let snap = job.budget_snapshot();
        let inner = job.inner.lock().unwrap();
        let progress = match &inner.progress {
            Some(p) => format!(
                "{{\"done_partitions\":{},\"patterns\":{},\"ops\":{}}}",
                p.done_partitions, p.patterns, p.ops
            ),
            None => "null".into(),
        };
        let error = match &inner.error {
            Some(JobError { message, transient }) => {
                format!("{{\"message\":\"{}\",\"transient\":{transient}}}", json_escape(message))
            }
            None => "null".into(),
        };
        let result_lines = match &inner.result {
            Some(r) => r.lines.len().to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"id\":{},\"tenant\":\"{}\",\"db\":\"{}\",\"delta\":{},\"algo\":\"{}\",\
             \"mode\":\"{}\",\"state\":\"{}\",\"cached\":{},\"slices\":{},\"preemptions\":{},\
             \"budget\":{{\"ops\":{},\"patterns\":{},\"elapsed_ms\":{},\"ops_remaining\":{},\
             \"patterns_remaining\":{},\"deadline_remaining_ms\":{}}},\
             \"progress\":{progress},\"result_lines\":{result_lines},\"error\":{error}}}",
            job.spec.id,
            json_escape(&job.spec.tenant),
            json_escape(&job.spec.db),
            job.spec.delta,
            job.spec.algo,
            job.spec.mode,
            inner.state.name(),
            inner.from_cache,
            inner.slices,
            inner.preemptions,
            snap.ops,
            snap.patterns,
            snap.elapsed.as_millis(),
            opt_json(snap.ops_remaining),
            opt_json(snap.patterns_remaining),
            opt_json(snap.deadline_remaining.map(|d| d.as_millis())),
        )
    }

    fn job_result(&self, job: &Arc<Job>, req: &Request) -> Response {
        let offset = match parse_opt::<usize>(req, "offset") {
            Ok(v) => v.unwrap_or(0),
            Err(r) => return r,
        };
        let limit = match parse_opt::<usize>(req, "limit") {
            Ok(v) => v.unwrap_or(usize::MAX),
            Err(r) => return r,
        };
        let min_length = match parse_opt::<usize>(req, "min_length") {
            Ok(v) => v.unwrap_or(1),
            Err(r) => return r,
        };
        let inner = job.inner.lock().unwrap();
        match inner.state {
            JobState::Done => {
                let result = inner.result.as_ref().expect("done jobs have results");
                Response::text(200, result.render(min_length, offset, limit))
            }
            JobState::Failed => {
                let err = inner
                    .error
                    .clone()
                    .unwrap_or(JobError { message: "failed".into(), transient: false });
                // Ride the DiscError mapping so transient failures carry
                // Retry-After exactly like every other 503.
                error_response(&DiscError::Io {
                    path: PathBuf::from(format!("jobs/{}", job.spec.id)),
                    message: err.message,
                    transient: err.transient,
                })
            }
            state => plain_error(
                409,
                &format!("job is {}; results exist only once it is done", state.name()),
            ),
        }
    }

    // ---------------------------------------------------------------
    // Observability.

    /// Readiness: 200 while accepting load, 503 + computed `Retry-After`
    /// while draining or while the accept queue is saturated — the signal
    /// a load balancer uses to route around this instance.
    fn get_readyz(&self) -> Response {
        let draining = self.shared.sched.is_draining();
        let saturated = self.shared.queue.depth() >= self.shared.cfg.limits.queue_depth;
        if draining || saturated {
            let reason = if draining { "draining" } else { "saturated" };
            let retry = self.current_retry_after();
            return Response::json(
                503,
                format!("{{\"ready\":false,\"reason\":\"{reason}\",\"retry_after\":{retry}}}"),
            )
            .with_header("Retry-After", retry.to_string());
        }
        Response::json(200, "{\"ready\":true}".into())
    }

    /// The overload snapshot: admission counters, live queue depth, the
    /// `Retry-After` a shed would advertise right now, chaos faults (when
    /// the harness is active), and per-tenant spend.
    fn get_admin_stats(&self) -> Response {
        let s = &self.shared.stats;
        let tenants: Vec<String> = self
            .shared
            .sched
            .tenant_spend()
            .iter()
            .map(|(tenant, t)| {
                format!(
                    "{{\"tenant\":\"{}\",\"jobs\":{},\"ops\":{},\"patterns\":{}}}",
                    json_escape(tenant),
                    t.jobs,
                    t.ops,
                    t.patterns
                )
            })
            .collect();
        Response::json(
            200,
            format!(
                "{{\"accepted\":{},\"shed\":{},\"too_large\":{},\"timeouts\":{},\
                 \"quota_denials\":{},\"accept_retries\":{},\"queue_depth\":{},\
                 \"scheduler_load\":{},\"retry_after_now\":{},\"chaos_faults\":{},\
                 \"tracked_buckets\":{},\"tenants\":[{}]}}",
                s.accepted.load(Ordering::Relaxed),
                s.shed.load(Ordering::Relaxed),
                s.too_large.load(Ordering::Relaxed),
                s.timeouts.load(Ordering::Relaxed),
                s.quota_denials.load(Ordering::Relaxed),
                s.accept_retries.load(Ordering::Relaxed),
                self.shared.queue.depth(),
                self.shared.sched.load(),
                self.current_retry_after(),
                self.shared.chaos_ledger.injected(),
                self.shared.sched.tracked_buckets(),
                tenants.join(","),
            ),
        )
    }

    fn get_stats(&self) -> Response {
        let (hits, misses, entries) = self.shared.sched.cache.lock().unwrap().stats();
        let jobs: Vec<String> = self
            .shared
            .sched
            .job_state_counts()
            .iter()
            .map(|(state, n)| format!("\"{state}\":{n}"))
            .collect();
        Response::json(
            200,
            format!(
                "{{\"uptime_ms\":{},\"mine_invocations\":{},\"draining\":{},\
                 \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"entries\":{entries}}},\
                 \"jobs\":{{{}}}}}",
                self.shared.started.elapsed().as_millis(),
                self.shared.sched.mine_invocations.load(Ordering::Relaxed),
                self.shared.sched.is_draining(),
                jobs.join(","),
            ),
        )
    }

    fn get_tenants(&self) -> Response {
        let body: Vec<String> = self
            .shared
            .sched
            .tenant_spend()
            .iter()
            .map(|(tenant, s)| {
                format!(
                    "{{\"tenant\":\"{}\",\"jobs\":{},\"slices\":{},\"ops\":{},\"patterns\":{}}}",
                    json_escape(tenant),
                    s.jobs,
                    s.slices,
                    s.ops,
                    s.patterns
                )
            })
            .collect();
        Response::json(200, format!("[{}]", body.join(",")))
    }

    // ---------------------------------------------------------------
    // Persistence: manifest + per-job results.

    fn manifest_path(&self) -> PathBuf {
        self.shared.cfg.data_dir.join("manifest")
    }

    fn result_path(&self, id: u64) -> PathBuf {
        self.shared.sched.job_dir(id).join("result.tsv")
    }

    /// Serializes registry + jobs + id counter to `manifest`, atomically.
    pub fn persist_manifest(&self) {
        let _guard = self.shared.manifest_lock.lock().unwrap();
        let mut out = String::from("v1\n");
        out.push_str(&format!("nextjob {}\n", self.shared.next_job.load(Ordering::SeqCst)));
        for entry in self.shared.registry.lock().unwrap().list() {
            match &entry.source {
                DbSource::Upload => out.push_str(&format!("db {} upload\n", entry.name)),
                DbSource::Attach(path) => out.push_str(&format!(
                    "db {} attach {}\n",
                    entry.name,
                    percent_encode(&path.to_string_lossy())
                )),
            }
        }
        for job in self.shared.sched.list_jobs() {
            let inner = job.inner.lock().unwrap();
            // Running collapses to queued: by the time the manifest is
            // written (post-drain), a running state means the process died
            // un-drained; the checkpoint still resumes it.
            let state = match inner.state {
                JobState::Running => JobState::Queued,
                s => s,
            };
            let s = &job.spec;
            out.push_str(&format!(
                "job {} {} {} {} {} {} {} {} {} {}\n",
                s.id,
                s.tenant,
                s.db,
                s.delta,
                s.algo,
                s.mode,
                s.max_ops.map_or("-".into(), |v| v.to_string()),
                s.max_patterns.map_or("-".into(), |v| v.to_string()),
                u8::from(s.no_cache),
                state.name(),
            ));
        }
        let path = self.manifest_path();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let tmp = path.with_extension("tmp");
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = write {
            eprintln!("disc-server: cannot persist manifest: {e}");
        }
    }

    /// Reloads the manifest a previous process wrote: databases re-register
    /// from their persisted sources, queued jobs re-submit (their
    /// checkpoints auto-resume), finished jobs reload their rendered
    /// results. A database that no longer loads fails its dependent jobs
    /// rather than the whole server.
    fn load_manifest(&self) {
        let Ok(text) = std::fs::read_to_string(self.manifest_path()) else {
            return;
        };
        let mut lines = text.lines();
        if lines.next() != Some("v1") {
            eprintln!("disc-server: unrecognized manifest version; starting fresh");
            return;
        }
        for line in lines {
            let fields: Vec<&str> = line.split(' ').collect();
            match fields.as_slice() {
                ["nextjob", n] => {
                    if let Ok(n) = n.parse::<u64>() {
                        self.shared.next_job.store(n, Ordering::SeqCst);
                    }
                }
                ["db", name, "upload"] => {
                    let path = self.shared.registry.lock().unwrap().upload_path(name);
                    match std::fs::read(&path) {
                        Ok(bytes) => {
                            if let Err(e) = self
                                .shared
                                .registry
                                .lock()
                                .unwrap()
                                .register_upload(name, &bytes, false)
                            {
                                eprintln!("disc-server: cannot reload db {name}: {e:?}");
                            }
                        }
                        Err(e) => eprintln!("disc-server: cannot reload db {name}: {e}"),
                    }
                }
                ["db", name, "attach", encoded] => {
                    let Some(path) = crate::http::percent_decode(encoded) else {
                        eprintln!("disc-server: bad attach path for db {name}");
                        continue;
                    };
                    if let Err(e) =
                        self.shared.registry.lock().unwrap().register_attach(name, Path::new(&path))
                    {
                        eprintln!("disc-server: cannot re-attach db {name}: {e:?}");
                    }
                }
                ["job", id, tenant, db, delta, algo, mode, max_ops, max_patterns, no_cache, state] =>
                {
                    let (Ok(id), Ok(delta)) = (id.parse::<u64>(), delta.parse::<u64>()) else {
                        continue;
                    };
                    let spec = JobSpec {
                        id,
                        tenant: tenant.to_string(),
                        db: db.to_string(),
                        delta,
                        algo: algo.to_string(),
                        mode: mode.to_string(),
                        max_ops: max_ops.parse().ok(),
                        max_patterns: max_patterns.parse().ok(),
                        // Wall-clock deadlines do not survive a restart;
                        // the drain already charged the job its slice.
                        deadline: None,
                        no_cache: *no_cache == "1",
                    };
                    self.reload_job(spec, state);
                }
                _ => eprintln!("disc-server: skipping unrecognized manifest line: {line}"),
            }
        }
    }

    fn reload_job(&self, spec: JobSpec, state: &str) {
        let id = spec.id;
        let Some(db) = self.shared.registry.lock().unwrap().get(&spec.db) else {
            let job = Arc::new(Job::new(spec, 1));
            {
                let mut inner = job.inner.lock().unwrap();
                inner.state = JobState::Failed;
                inner.error = Some(JobError {
                    message: "database did not survive the restart".into(),
                    transient: false,
                });
            }
            // Terminal from birth: submit() only queues non-terminal jobs,
            // but it needs *a* db entry — record the job directly instead.
            self.shared.sched.submit_terminal(job);
            return;
        };
        match state {
            "done" => {
                let job = match self.load_result(id) {
                    Some(result) => {
                        // Warm the cache from the persisted result so a
                        // repeat query after the restart is still served
                        // without a miner invocation.
                        if !spec.no_cache {
                            self.shared.sched.cache.lock().unwrap().insert(
                                CacheKey {
                                    fingerprint: db.fingerprint,
                                    delta: spec.delta,
                                    algo: spec.algo.clone(),
                                    mode: spec.mode.clone(),
                                },
                                Arc::clone(&result),
                            );
                        }
                        Arc::new(Job::from_cache(spec, result))
                    }
                    None => {
                        let job = Arc::new(Job::new(spec, 1));
                        let mut inner = job.inner.lock().unwrap();
                        inner.state = JobState::Failed;
                        inner.error = Some(JobError {
                            message: "result file did not survive the restart".into(),
                            transient: false,
                        });
                        drop(inner);
                        job
                    }
                };
                self.shared.sched.submit(job, db);
            }
            "failed" | "cancelled" => {
                let job = Arc::new(Job::new(spec, 1));
                {
                    let mut inner = job.inner.lock().unwrap();
                    inner.state =
                        if state == "failed" { JobState::Failed } else { JobState::Cancelled };
                    if state == "failed" {
                        inner.error = Some(JobError {
                            message: "failed before the restart".into(),
                            transient: false,
                        });
                    }
                }
                self.shared.sched.submit(job, db);
            }
            // queued (and anything unrecognized, conservatively): requeue;
            // a checkpoint at jobs/<id>/mine.dscck resumes automatically.
            _ => {
                let job = Arc::new(Job::new(spec, self.shared.cfg.scheduler.slice_ops));
                // Seed accumulated spend from the checkpoint, so the first
                // slice's budget lands one increment above the re-charge
                // instead of rediscovering the spend by doubling.
                let ckpt = self.shared.sched.job_dir(id).join(disc_algo::CHECKPOINT_FILE);
                if let Ok(p) = disc_core::peek_progress(&ckpt) {
                    let mut inner = job.inner.lock().unwrap();
                    inner.ops = p.ops;
                    inner.patterns = p.patterns as usize;
                    inner.progress = Some(p);
                }
                self.shared.sched.submit(job, db);
            }
        }
    }

    /// Loads a persisted `result.tsv` back into a [`RenderedResult`].
    fn load_result(&self, id: u64) -> Option<Arc<RenderedResult>> {
        let text = std::fs::read_to_string(self.result_path(id)).ok()?;
        let mut lines = Vec::new();
        for line in text.lines() {
            let (support, pattern) = line.split_once('\t')?;
            lines.push((support.parse::<u64>().ok()?, pattern.to_string()));
        }
        let total = lines.len();
        Some(Arc::new(RenderedResult { lines, total_patterns: total }))
    }
}

fn bad_param(name: &str, expectation: &str) -> Response {
    // Parameter errors ride the Config variant so the status mapping (400,
    // the exit-2 analogue) and the message format stay uniform.
    error_response(&DiscError::Config { option: name.into(), reason: expectation.into() })
}

fn parse_opt<T: std::str::FromStr>(req: &Request, key: &str) -> Result<Option<T>, Response> {
    match req.param(key) {
        None => Ok(None),
        Some(v) => match v.parse::<T>() {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(bad_param(key, "unparseable value")),
        },
    }
}

fn opt_json<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or("null".into(), |v| v.to_string())
}

fn db_json(entry: &crate::registry::DbEntry) -> String {
    let source = match &entry.source {
        DbSource::Upload => "\"upload\"".to_string(),
        DbSource::Attach(path) => format!("\"attach:{}\"", json_escape(&path.to_string_lossy())),
    };
    format!(
        "{{\"name\":\"{}\",\"fingerprint\":\"{:#018x}\",\"rows\":{},\"compacted\":{},\"source\":{source}}}",
        json_escape(&entry.name),
        entry.fingerprint,
        entry.rows,
        entry.mapping.is_some(),
    )
}

/// Percent-encodes a string for the space-separated manifest: everything
/// outside the visible-ASCII-minus-`%`-and-space set is `%XX`-escaped.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if (b'!'..=b'~').contains(&b) && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}
