//! SIGTERM → drain flag, without a libc dependency.
//!
//! Mirrors the discipline of `disc-core`'s mmap module: the one `unsafe`
//! surface is a module-scoped allow around a direct `extern "C"`
//! declaration of the libc symbol the platform already links. The handler
//! does the only async-signal-safe thing there is to do — store to an
//! atomic — and the server's accept loop polls the flag.
//!
//! On non-Unix platforms installation is a no-op; the in-process drain
//! endpoint (`POST /admin/drain`) covers graceful shutdown everywhere.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM (or SIGINT) has arrived since
/// [`install_termination_flag`].
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Sets the flag by hand — what the drain endpoint and tests use; also the
/// non-Unix "handler".
pub fn request_termination() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. The return value (previous handler) is
        /// ignored — the server installs once at startup and never
        /// restores.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_terminate(_sig: i32) {
        // Only async-signal-safe operation here: one atomic store.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
    }
}

/// Installs the SIGTERM/SIGINT handler that flips the drain flag. Safe to
/// call more than once.
pub fn install_termination_flag() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_flips_the_flag() {
        // Note: process-global — fine because nothing in this crate's test
        // suite asserts the flag stays false after this test runs.
        install_termination_flag();
        request_termination();
        assert!(termination_requested());
    }
}
