//! Admission control and per-tenant quotas: the knobs and bookkeeping that
//! keep an overloaded or hostile client population from exhausting the
//! server.
//!
//! ## Admission points
//!
//! Work is bounded at three gates, each refusing load as cheaply as
//! possible — the DISC engine makes an *admitted* job's cost dominated by
//! tree construction, so the whole point of shedding is that rejected work
//! never reaches it:
//!
//! 1. **Connection admission** — a fixed pool of handler threads
//!    ([`LimitsConfig::max_connections`]) drains a bounded queue of
//!    accepted sockets ([`LimitsConfig::queue_depth`]). A socket arriving
//!    at a full queue is **shed**: one 503 write whose `Retry-After` is
//!    computed from the backlog ([`retry_after_secs`]), then close.
//! 2. **Request admission** — per-request head/body byte caps (413 before
//!    the body is buffered) and read/write deadlines that bound how long a
//!    slow-loris client can hold a handler thread (408 on expiry).
//! 3. **Job admission** — per-tenant token-bucket request rates and
//!    concurrent-job / cumulative-ops ceilings, refused with typed 429s
//!    before a [`crate::job::Job`] is even constructed.
//!
//! Everything here is deterministic given a clock: the token bucket refills
//! from elapsed [`Instant`] time, and [`retry_after_secs`] is a pure
//! function of the observed backlog.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Network-layer admission limits. The defaults are sized for a small
/// shared host; every field has a `disc-mine serve` flag.
#[derive(Debug, Clone)]
pub struct LimitsConfig {
    /// Handler threads — the connection pool width. Connections beyond
    /// this wait in the queue; no thread is ever spawned per connection.
    pub max_connections: usize,
    /// Accepted connections allowed to wait for a handler before new
    /// arrivals are shed with 503.
    pub queue_depth: usize,
    /// Largest accepted request head (request line + headers); beyond it
    /// the request is refused with 413.
    pub max_head_bytes: usize,
    /// Largest accepted request body (`Content-Length`); a larger declared
    /// length is refused with 413 *before* any body byte is read.
    pub max_body_bytes: usize,
    /// Per-*read* deadline: a client that goes silent mid-request this
    /// long gets 408 and the handler thread moves on. Renewable — every
    /// received byte restarts it — which is why it cannot stand alone
    /// (see `request_deadline`).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a client that stops draining its
    /// response this long is abandoned.
    pub write_timeout: Duration,
    /// Absolute per-request deadline: total wall-clock budget for
    /// receiving one request (head + body), whatever mix of progress and
    /// stalls. This is the trickle defense: a client feeding one byte just
    /// under `read_timeout` renews the per-read deadline forever, but
    /// trips this one after at most `request_deadline` (+ one in-flight
    /// read) with a 408. Must be ≥ `read_timeout` to be meaningful.
    pub request_deadline: Duration,
}

impl Default for LimitsConfig {
    fn default() -> LimitsConfig {
        LimitsConfig {
            max_connections: 16,
            queue_depth: 64,
            max_head_bytes: 64 << 10,
            max_body_bytes: 64 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: crate::http::REQUEST_DEADLINE,
        }
    }
}

/// Per-tenant quota ceilings, applied uniformly to every tenant. `None`
/// disables the corresponding check.
///
/// ## Trust model
///
/// Tenant identity is the client-asserted `tenant` query parameter — the
/// server performs no authentication. Quotas are therefore a **fairness
/// and accounting mechanism for trusted tenants** (cooperating clients
/// behind a frontend that authenticates and pins tenant names), not a
/// security boundary: an adversary free to mint tenant names gets a fresh
/// bucket and spend ledger per name. The server bounds the *memory* cost
/// of such rotation — idle rate buckets are LRU-evicted beyond
/// [`QuotaConfig::MAX_TRACKED_BUCKETS`] — but enforcing per-principal
/// ceilings against hostile clients requires deriving the tenant from an
/// authenticated source in front of this server.
#[derive(Debug, Clone, Default)]
pub struct QuotaConfig {
    /// Token-bucket request rate for job submissions.
    pub rate: Option<RateLimit>,
    /// Ceiling on a tenant's simultaneously live (queued or running) jobs.
    pub max_concurrent_jobs: Option<usize>,
    /// Ceiling on a tenant's cumulative charged guard operations across
    /// all its finished slices — the long-horizon spend backstop.
    pub max_cumulative_ops: Option<u64>,
}

impl QuotaConfig {
    /// Most token buckets tracked at once. Inserting a bucket for a fresh
    /// tenant name beyond this evicts the least-recently-used one, so a
    /// client rotating tenant names cannot grow the map without bound. An
    /// evicted bucket resurrects full — acceptable under the trust model
    /// above (rotation already defeats per-name metering; the cap exists
    /// to bound memory, not to stop rotation).
    pub const MAX_TRACKED_BUCKETS: usize = 1024;
}

/// A token-bucket rate: `burst` requests immediately, refilling at
/// `per_sec` tokens per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity — the tolerated burst.
    pub burst: u32,
    /// Sustained refill rate, tokens per second.
    pub per_sec: f64,
}

/// One tenant's token bucket. Refill is computed lazily from elapsed time,
/// so an idle bucket costs nothing.
#[derive(Debug)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(limit: RateLimit) -> TokenBucket {
        TokenBucket { limit, tokens: f64::from(limit.burst), refilled: Instant::now() }
    }

    /// Takes one token, or reports how long until one is available. A
    /// non-positive refill rate means the bucket never refills — the
    /// returned wait saturates at an hour rather than pretending precision.
    pub fn try_take(&mut self) -> Result<(), Duration> {
        let now = Instant::now();
        if self.limit.per_sec > 0.0 {
            let refill = now.duration_since(self.refilled).as_secs_f64() * self.limit.per_sec;
            self.tokens = (self.tokens + refill).min(f64::from(self.limit.burst));
        }
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let wait = if self.limit.per_sec > 0.0 {
            Duration::from_secs_f64(((1.0 - self.tokens) / self.limit.per_sec).min(3600.0))
        } else {
            Duration::from_secs(3600)
        };
        Err(wait)
    }

    /// When this bucket was last touched by a submission — `try_take`
    /// refreshes it, so it doubles as the LRU timestamp for eviction.
    pub fn last_used(&self) -> Instant {
        self.refilled
    }

    /// Tokens currently available (for the stats endpoint).
    pub fn available(&self) -> f64 {
        let refill = if self.limit.per_sec > 0.0 {
            self.refilled.elapsed().as_secs_f64() * self.limit.per_sec
        } else {
            0.0
        };
        (self.tokens + refill).min(f64::from(self.limit.burst))
    }
}

/// Why a job submission was refused at the quota gate. All variants map to
/// a typed 429 at the API layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaDenial {
    /// The tenant's token bucket is empty; a token arrives in `retry_after`.
    Rate {
        /// Time until the bucket holds one token again.
        retry_after: Duration,
    },
    /// The tenant already has `live` queued-or-running jobs of `limit`
    /// allowed.
    Concurrency {
        /// The configured ceiling.
        limit: usize,
        /// Live jobs observed.
        live: usize,
    },
    /// The tenant's cumulative charged operations reached the ceiling.
    CumulativeOps {
        /// The configured ceiling.
        limit: u64,
        /// Operations already charged.
        spent: u64,
    },
}

impl QuotaDenial {
    /// The wire name of the tripped quota, for the 429 body.
    pub fn kind(&self) -> &'static str {
        match self {
            QuotaDenial::Rate { .. } => "rate",
            QuotaDenial::Concurrency { .. } => "concurrency",
            QuotaDenial::CumulativeOps { .. } => "cumulative_ops",
        }
    }

    /// The `Retry-After` seconds to advertise: the bucket's own estimate
    /// for rate denials (rounded up, at least 1), a short constant for
    /// concurrency (a slot frees when a job finishes), and none for the
    /// cumulative cap (waiting will not un-spend operations).
    pub fn retry_after_secs(&self) -> Option<u32> {
        match self {
            QuotaDenial::Rate { retry_after } => {
                Some((retry_after.as_secs_f64().ceil() as u32).clamp(1, 3600))
            }
            QuotaDenial::Concurrency { .. } => Some(1),
            QuotaDenial::CumulativeOps { .. } => None,
        }
    }

    /// The human-readable refusal message.
    pub fn message(&self) -> String {
        match self {
            QuotaDenial::Rate { retry_after } => format!(
                "tenant request rate exceeded; a token refills in {:.1}s",
                retry_after.as_secs_f64()
            ),
            QuotaDenial::Concurrency { limit, live } => {
                format!("tenant already has {live} live job(s) of {limit} allowed")
            }
            QuotaDenial::CumulativeOps { limit, spent } => {
                format!("tenant spent {spent} of {limit} budgeted operations")
            }
        }
    }
}

/// `Retry-After` seconds for a load shed: one second when idle, plus one
/// second per `capacity` units of backlog, capped at a minute. `backlog`
/// is whatever is waiting (queued connections + queued and running jobs);
/// `capacity` is how many of those the server retires concurrently
/// (handler threads + mining threads). Deterministic, so tests can assert
/// the exact header.
pub fn retry_after_secs(backlog: usize, capacity: usize) -> u32 {
    (1 + (backlog / capacity.max(1)) as u32).min(60)
}

/// Whether an `accept(2)` failure is worth retrying in place: the
/// net-transient class (`EINTR`, `ECONNABORTED`-style kinds) plus the
/// file-descriptor-exhaustion errnos (`EMFILE`/`ENFILE`) that clear as
/// soon as in-flight connections close — precisely when backing off helps.
pub fn is_transient_accept_error(e: &std::io::Error) -> bool {
    const ENFILE: i32 = 23;
    const EMFILE: i32 = 24;
    disc_core::is_transient_net_kind(e.kind())
        || matches!(e.raw_os_error(), Some(ENFILE) | Some(EMFILE))
}

/// Admission counters, all monotonically increasing (gauges live on the
/// pool). Shared between the accept loop, the handler pool, and the
/// `/admin/stats` endpoint.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Connections accepted from the listener.
    pub accepted: AtomicU64,
    /// Connections shed with 503 because the queue was full.
    pub shed: AtomicU64,
    /// Requests refused with 413 (head or body over the cap).
    pub too_large: AtomicU64,
    /// Requests refused with 408 (read deadline expired).
    pub timeouts: AtomicU64,
    /// Job submissions refused with 429 (any quota).
    pub quota_denials: AtomicU64,
    /// Transient `accept()` failures retried in place.
    pub accept_retries: AtomicU64,
}

struct PoolState {
    queue: VecDeque<TcpStream>,
    shutdown: bool,
}

/// The bounded hand-off between the accept loop and the fixed handler
/// pool. Pushing to a full queue fails immediately (the caller sheds);
/// popping blocks until a connection arrives or shutdown.
pub struct ConnQueue {
    state: Mutex<PoolState>,
    ready: Condvar,
    cap: usize,
    depth: AtomicUsize,
}

impl ConnQueue {
    /// A queue admitting at most `cap` waiting connections.
    pub fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    /// Admits `stream`, or returns it when the queue is full (the caller
    /// sheds) or shut down (the caller closes).
    pub fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap();
        if state.shutdown || state.queue.len() >= self.cap {
            return Err(stream);
        }
        state.queue.push_back(stream);
        self.depth.store(state.queue.len(), Ordering::Relaxed);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available (`Some`) or the queue is
    /// shut down and empty (`None` — the worker exits).
    pub fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(stream) = state.queue.pop_front() {
                self.depth.store(state.queue.len(), Ordering::Relaxed);
                return Some(stream);
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Current queue depth (lock-free gauge for shed decisions and stats).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Stops the queue: waiting workers drain what is queued, then exit.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap();
        state.shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_allows_the_burst_then_meters() {
        let mut bucket = TokenBucket::new(RateLimit { burst: 3, per_sec: 0.0 });
        for _ in 0..3 {
            assert!(bucket.try_take().is_ok());
        }
        let wait = bucket.try_take().unwrap_err();
        assert_eq!(wait, Duration::from_secs(3600), "zero refill saturates the wait");
        assert!(bucket.available() < 1.0);
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut bucket = TokenBucket::new(RateLimit { burst: 1, per_sec: 1000.0 });
        assert!(bucket.try_take().is_ok());
        let wait = match bucket.try_take() {
            Ok(()) => Duration::ZERO, // a refill already landed; fine
            Err(w) => w,
        };
        assert!(wait <= Duration::from_millis(2), "1000/s refill waits ~1ms, got {wait:?}");
        std::thread::sleep(Duration::from_millis(5));
        assert!(bucket.try_take().is_ok(), "elapsed time refills the bucket");
    }

    #[test]
    fn denial_retry_after_is_typed_per_quota() {
        let rate = QuotaDenial::Rate { retry_after: Duration::from_millis(2500) };
        assert_eq!(rate.kind(), "rate");
        assert_eq!(rate.retry_after_secs(), Some(3), "rounds up");
        let conc = QuotaDenial::Concurrency { limit: 2, live: 2 };
        assert_eq!(conc.retry_after_secs(), Some(1));
        let ops = QuotaDenial::CumulativeOps { limit: 10, spent: 12 };
        assert_eq!(ops.retry_after_secs(), None, "spent budget does not refill");
        assert!(ops.message().contains("12 of 10"));
    }

    #[test]
    fn shed_retry_after_scales_with_backlog() {
        assert_eq!(retry_after_secs(0, 4), 1);
        assert_eq!(retry_after_secs(4, 4), 2);
        assert_eq!(retry_after_secs(40, 4), 11);
        assert_eq!(retry_after_secs(10_000, 4), 60, "capped at a minute");
        assert_eq!(retry_after_secs(5, 0), 6, "zero capacity clamps to 1");
    }

    #[test]
    fn accept_error_classification_covers_fd_exhaustion() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient_accept_error(&Error::from_raw_os_error(24)), "EMFILE");
        assert!(is_transient_accept_error(&Error::from_raw_os_error(23)), "ENFILE");
        assert!(is_transient_accept_error(&Error::new(ErrorKind::ConnectionAborted, "x")));
        assert!(is_transient_accept_error(&Error::new(ErrorKind::Interrupted, "x")));
        assert!(!is_transient_accept_error(&Error::new(ErrorKind::PermissionDenied, "x")));
    }

    #[test]
    fn conn_queue_bounds_and_drains_on_shutdown() {
        let q = ConnQueue::new(1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c1).is_ok());
        assert_eq!(q.depth(), 1);
        assert!(q.push(c2).is_err(), "beyond cap the stream comes back for shedding");
        let popped = q.pop().unwrap();
        drop(popped);
        assert_eq!(q.depth(), 0);
        q.shutdown();
        assert!(q.pop().is_none(), "shutdown + empty ends the worker");
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c3).is_err(), "no admissions after shutdown");
    }
}
