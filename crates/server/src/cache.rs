//! The fingerprint-keyed result cache.
//!
//! Serving workloads issue many queries over few databases at varying
//! thresholds, so a repeat query must not re-mine. The key is
//! `(database fingerprint, δ, algorithm, mode)`:
//!
//! * the **fingerprint** is the FNV-1a hash of the registered database
//!   ([`disc_core::database_fingerprint`]) — the same value checkpoints are
//!   validated against, so "same database" means byte-identical contents,
//!   not same name;
//! * **δ** is the *resolved* support count, so `minsup=0.5` and `delta=N/2`
//!   on the same database share one entry;
//! * the **algorithm** is part of the key even though every complete miner
//!   returns the same pattern set — a cached entry must attest which engine
//!   produced it, and partial/budget-limited configurations differ;
//! * the **mode** (`all` / `closed` / `maximal`) selects which projection
//!   of the frequent set was rendered.
//!
//! Entries hold the fully rendered result lines (support + pattern text in
//! comparative order — exactly the bytes `disc-mine` prints), so a cache
//! hit is a clone of an `Arc`, no re-rendering. Eviction is LRU by entry
//! count; hits refresh recency.

use std::collections::HashMap;
use std::sync::Arc;

/// A cache key. See the module docs for field semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a fingerprint of the database contents.
    pub fingerprint: u64,
    /// Resolved minimum-support count δ.
    pub delta: u64,
    /// Algorithm name as submitted (`disc-all`, `dynamic`, `parallel`, `auto`).
    pub algo: String,
    /// Result projection: `all`, `closed`, or `maximal`.
    pub mode: String,
}

/// A finished, rendered mining result — what jobs produce and the cache
/// stores. `lines` are `(support, pattern-text)` in comparative order.
#[derive(Debug)]
pub struct RenderedResult {
    /// `(support, pattern)` rows, comparative order.
    pub lines: Vec<(u64, String)>,
    /// Total frequent sequences before any mode projection.
    pub total_patterns: usize,
}

impl RenderedResult {
    /// Renders rows `offset..offset+limit` with a minimum pattern length,
    /// in the exact `"{support}\t{pattern}\n"` byte format of `disc-mine`.
    pub fn render(&self, min_length: usize, offset: usize, limit: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for (support, pattern) in self
            .lines
            .iter()
            .filter(|(_, p)| min_length <= 1 || pattern_length(p) >= min_length)
            .skip(offset)
            .take(limit)
        {
            out.extend_from_slice(support.to_string().as_bytes());
            out.push(b'\t');
            out.extend_from_slice(pattern.as_bytes());
            out.push(b'\n');
        }
        out
    }
}

/// Items in a rendered pattern = commas + itemsets. `(a,g)(b)` has one
/// comma and two itemsets: length 3. Cheaper than re-parsing and exact for
/// the canonical `Display` format the lines were rendered from.
fn pattern_length(p: &str) -> usize {
    let commas = p.matches(',').count();
    let sets = p.matches('(').count();
    commas + sets
}

/// An LRU map from [`CacheKey`] to [`RenderedResult`], plus hit/miss
/// counters for observability (the acceptance check that a repeat query
/// never re-mines reads these alongside the mine-invocation counter).
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, Arc<RenderedResult>>,
    /// Keys in recency order, oldest first. Entry count is small (the
    /// capacity default is 64), so O(n) recency updates are fine.
    order: Vec<CacheKey>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache evicting beyond `capacity` entries (clamped to at least 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<RenderedResult>> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                let pos = self.order.iter().position(|k| k == key).expect("order tracks map");
                let k = self.order.remove(pos);
                self.order.push(k);
                Some(Arc::clone(v))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// entry beyond capacity.
    pub fn insert(&mut self, key: CacheKey, value: Arc<RenderedResult>) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            let pos = self.order.iter().position(|k| *k == key).expect("order tracks map");
            let k = self.order.remove(pos);
            self.order.push(k);
        }
        while self.map.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
        }
    }

    /// `(hits, misses, live entries)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.hits, self.misses, self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(delta: u64) -> CacheKey {
        CacheKey { fingerprint: 7, delta, algo: "disc-all".into(), mode: "all".into() }
    }

    fn value() -> Arc<RenderedResult> {
        Arc::new(RenderedResult {
            lines: vec![(3, "(a)".into()), (2, "(a, g)(b)".into())],
            total_patterns: 2,
        })
    }

    #[test]
    fn hits_refresh_recency_and_misses_count() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), value());
        cache.insert(key(2), value());
        assert!(cache.get(&key(1)).is_some()); // 1 now most recent
        cache.insert(key(3), value()); // evicts 2
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let (hits, misses, live) = cache.stats();
        assert_eq!((hits, misses, live), (3, 1, 2));
    }

    #[test]
    fn render_paginates_in_comparative_order() {
        let v = value();
        assert_eq!(v.render(1, 0, usize::MAX), b"3\t(a)\n2\t(a, g)(b)\n");
        assert_eq!(v.render(1, 1, 1), b"2\t(a, g)(b)\n");
        assert_eq!(v.render(1, 2, 10), b"");
        // min_length filters exactly like `disc-mine --min-length`.
        assert_eq!(v.render(3, 0, usize::MAX), b"2\t(a, g)(b)\n");
    }

    #[test]
    fn pattern_length_matches_display_format() {
        assert_eq!(pattern_length("(a)"), 1);
        assert_eq!(pattern_length("(a, g)(b)"), 3);
        assert_eq!(pattern_length("(a, b, c)"), 3);
    }
}
