//! A minimal HTTP/1.1 layer over `std::net::TcpStream` — just enough for
//! the mining API, hand-rolled so the server stays dependency-free like the
//! rest of the workspace.
//!
//! Scope: one request per connection (`Connection: close` on every
//! response), request line + headers + an optional `Content-Length` body,
//! percent-decoded query parameters. Deliberately not supported: chunked
//! request bodies, keep-alive, pipelining, TLS. Malformed input never
//! panics — it surfaces as a typed [`HttpError`] the caller maps to a 4xx.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The largest request body the server accepts (64 MiB) — uploads beyond
/// this are refused with `413 Payload Too Large` before buffering.
pub const MAX_BODY_BYTES: usize = 64 << 20;
/// The largest request head (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 64 << 10;

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-request.
    Io(std::io::Error),
    /// The request line or headers were malformed.
    Malformed(&'static str),
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

/// A parsed request: method, decoded path, query parameters, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The path component, before `?`, percent-decoded.
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The last value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether boolean-ish parameter `key` is set (present and not `0`/`false`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.param(key), Some(v) if v != "0" && v != "false")
    }
}

/// Reads and parses one request from `stream`. Applies a read timeout so a
/// stalled client cannot wedge a handler thread forever.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut head = Vec::with_capacity(1024);
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until CRLF CRLF; the head is tiny and this keeps
    // the body bytes (which follow immediately) out of any lookahead buffer.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large"));
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-head")),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(HttpError::Malformed("missing method"))?.to_string();
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("chunked bodies are not supported"));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(HttpError::Io)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path).ok_or(HttpError::Malformed("bad path encoding"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(HttpError::Malformed("bad query encoding"))?;
        let v = percent_decode(v).ok_or(HttpError::Malformed("bad query encoding"))?;
        query.push((k, v));
    }
    Ok(Request { method, path, query, body })
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on truncated or
/// non-hex escapes or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response under construction.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, ...), name/value.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the result stream uses this).
    pub fn text(status: u16, body: Vec<u8>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", headers: Vec::new(), body }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// Serializes and writes the response. Write errors are swallowed — the
    /// client is gone and there is nobody left to tell.
    pub fn send(self, stream: &mut TcpStream) {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_roundtrips_common_cases() {
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("a%2Fb%20c+d").as_deref(), Some("a/b c d"));
        assert_eq!(percent_decode("%e2%82%ac").as_deref(), Some("€"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%ff").is_none(), "invalid UTF-8 is rejected");
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
