//! A minimal HTTP/1.1 layer over any `Read`/`Write` stream — just enough
//! for the mining API, hand-rolled so the server stays dependency-free like
//! the rest of the workspace.
//!
//! Scope: one request per connection (`Connection: close` on every
//! response), request line + headers + an optional `Content-Length` body,
//! percent-decoded query parameters. Deliberately not supported: chunked
//! request bodies, keep-alive, pipelining, TLS. Malformed input never
//! panics — it surfaces as a typed [`HttpError`] the caller maps to a 4xx.
//!
//! Parsing is generic over the stream (`Read` for requests, `Write` for
//! responses) so the same code path runs over a bare `TcpStream` or a
//! [`crate::chaos::ChaosStream`] wrapper. Deadlines are enforced at two
//! scopes, both surfacing as [`HttpError::Timeout`] → 408: the *socket's*
//! per-read deadline (`set_read_timeout` at admission in `api.rs`) bounds
//! any single stalled read, and [`RequestLimits::request_deadline`] bounds
//! the **whole request** — a per-read timeout alone is renewable, so a
//! client trickling one byte just under it would otherwise hold a handler
//! thread indefinitely; the absolute budget is checked before every read
//! in both the head and body loops. Size caps come from [`RequestLimits`]
//! so admission control owns them: the head is bounded as it streams in,
//! and an over-cap declared `Content-Length` is refused **before a single
//! body byte is read or buffered** — a hostile declared length never
//! drives an allocation.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// The default largest request body the server accepts (64 MiB) — uploads
/// beyond this are refused with `413 Payload Too Large` before buffering.
pub const MAX_BODY_BYTES: usize = 64 << 20;
/// The default largest request head (request line + headers) accepted.
pub const MAX_HEAD_BYTES: usize = 64 << 10;
/// The default absolute per-request deadline: total wall-clock time a
/// request may spend being received, across *all* reads. Per-read socket
/// timeouts bound a silent stall; this bounds a trickle.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);
/// Body bytes are read in chunks of at most this, so even an accepted
/// `Content-Length` never triggers one up-front allocation of the full
/// declared size.
const BODY_CHUNK: usize = 64 << 10;

/// Per-request byte caps, owned by the server's
/// [`crate::limits::LimitsConfig`] and threaded into [`read_request`].
#[derive(Debug, Clone, Copy)]
pub struct RequestLimits {
    /// Cap on the request head (request line + headers) → 413 beyond.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length` → 413 beyond, checked before
    /// any body byte is read.
    pub max_body_bytes: usize,
    /// Absolute budget for receiving the whole request (head + body),
    /// checked before every read → 408 once exhausted. This is what
    /// actually defeats a trickling slow-loris: the socket's per-read
    /// timeout renews on every byte received, so without an absolute
    /// deadline a 1-byte-per-interval client holds a handler thread for
    /// up to `max_head_bytes × read_timeout`. With it, a handler is held
    /// at most `request_deadline` plus one final in-flight read timeout.
    pub request_deadline: Duration,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
            request_deadline: REQUEST_DEADLINE,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-request.
    Io(std::io::Error),
    /// A deadline expired mid-request — either the socket's per-read
    /// timeout (silent stall) or the absolute
    /// [`RequestLimits::request_deadline`] (trickle) → 408.
    Timeout,
    /// The request line or headers were malformed → 400.
    Malformed(&'static str),
    /// The request head exceeded [`RequestLimits::max_head_bytes`] → 413.
    HeadTooLarge(usize),
    /// The declared body length exceeds [`RequestLimits::max_body_bytes`] → 413.
    BodyTooLarge(usize),
    /// A response exceeded the caller's byte cap (client side; see
    /// [`read_response`]). A protocol-level fault, not a network one —
    /// retrying would download the same oversized reply again.
    ResponseTooLarge(usize),
}

/// A parsed request: method, decoded path, query parameters, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The path component, before `?`, percent-decoded.
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The last value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether boolean-ish parameter `key` is set (present and not `0`/`false`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.param(key), Some(v) if v != "0" && v != "false")
    }
}

/// Whether an I/O error is the socket deadline expiring. `WouldBlock` is
/// how Unix reports a timed-out blocking read with `SO_RCVTIMEO` set;
/// Windows uses `TimedOut`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn io_error(e: std::io::Error) -> HttpError {
    if is_timeout(&e) {
        HttpError::Timeout
    } else {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `stream`, enforcing the byte caps
/// and the absolute [`RequestLimits::request_deadline`] of `limits`. The
/// caller owns the socket's per-read deadline (`set_read_timeout`); both
/// kinds of expiry surface as [`HttpError::Timeout`].
pub fn read_request<S: Read>(stream: &mut S, limits: &RequestLimits) -> Result<Request, HttpError> {
    // The absolute budget starts when the handler starts reading (the
    // moment this connection begins occupying a handler thread) and is
    // checked before every read below, so progress — unlike the socket's
    // per-read timeout — never renews it.
    let deadline = Instant::now() + limits.request_deadline;
    let mut head = Vec::with_capacity(1024);
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until CRLF CRLF; the head is tiny and this keeps
    // the body bytes (which follow immediately) out of any lookahead buffer.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge(head.len()));
        }
        if Instant::now() >= deadline {
            return Err(HttpError::Timeout);
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-head")),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(HttpError::Malformed("missing method"))?.to_string();
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("chunked bodies are not supported"));
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    // Incremental body read: grow by bounded chunks so the declared length
    // never sizes an allocation on its own, and short reads (chaos,
    // fragmentation) are absorbed in the loop.
    let mut body = Vec::with_capacity(content_length.min(BODY_CHUNK));
    let mut chunk = [0u8; 4096];
    while body.len() < content_length {
        // The body shares the request's absolute budget: a trickled body
        // is the same slow-loris as a trickled head, just past the caps.
        if Instant::now() >= deadline {
            return Err(HttpError::Timeout);
        }
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        }
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path).ok_or(HttpError::Malformed("bad path encoding"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(HttpError::Malformed("bad query encoding"))?;
        let v = percent_decode(v).ok_or(HttpError::Malformed("bad query encoding"))?;
        query.push((k, v));
    }
    Ok(Request { method, path, query, body })
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on truncated or
/// non-hex escapes or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response under construction.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, ...), name/value.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the result stream uses this).
    pub fn text(status: u16, body: Vec<u8>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", headers: Vec::new(), body }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// Serializes and writes the response. Write errors are swallowed — the
    /// client is gone and there is nobody left to tell.
    pub fn send<W: Write>(self, stream: &mut W) {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Parses the status line and headers of an HTTP/1.1 response and returns
/// `(status, retry_after_secs, body)`. Shared with `disc-client`, which
/// needs to read what [`Response::send`] writes back through a faulty
/// stream — a short or garbled response is a typed error, never a panic.
///
/// `max_response_bytes` caps the total bytes read (head + body) — the
/// caller owns it (the client plumbs its `ClientConfig` value) so a big
/// legitimate result is not refused by a constant buried here. Exceeding
/// it is [`HttpError::ResponseTooLarge`]: a protocol-level refusal the
/// caller must treat as fatal, not a transient fault to retry.
pub fn read_response<S: Read>(
    stream: &mut S,
    max_response_bytes: usize,
) -> Result<(u16, Option<u32>, Vec<u8>), HttpError> {
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // `Connection: close` on every response: read to EOF, then split head
    // from body — simpler and more chaos-tolerant than length tracking.
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() > max_response_bytes {
                    return Err(HttpError::ResponseTooLarge(raw.len()));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        }
    }
    let head_end =
        find_crlf_crlf(&raw).ok_or(HttpError::Malformed("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty response"))?;
    let mut parts = status_line.split(' ');
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x response")),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("unparseable status code"))?;
    let mut retry_after = None;
    let mut content_length = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.trim().parse().ok();
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().ok();
        }
    }
    let body = raw[head_end + 4..].to_vec();
    if let Some(len) = content_length {
        if body.len() != len {
            return Err(HttpError::Malformed("truncated response body"));
        }
    }
    Ok((status, retry_after, body))
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A `Duration` helper for socket deadlines: `None` disables (0 means
/// "no deadline" on the CLI).
pub fn deadline_from_ms(ms: u64) -> Option<Duration> {
    if ms == 0 {
        None
    } else {
        Some(Duration::from_millis(ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn percent_decoding_roundtrips_common_cases() {
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("a%2Fb%20c+d").as_deref(), Some("a/b c d"));
        assert_eq!(percent_decode("%e2%82%ac").as_deref(), Some("€"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%ff").is_none(), "invalid UTF-8 is rejected");
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn oversized_declared_length_is_refused_before_reading_the_body() {
        let limits =
            RequestLimits { max_head_bytes: 64 << 10, max_body_bytes: 16, ..Default::default() };
        // The declared length is absurd and the body bytes are absent: the
        // parser must refuse from the header alone, without blocking on or
        // buffering a single body byte.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        let mut stream = Cursor::new(raw.to_vec());
        match read_request(&mut stream, &limits) {
            Err(HttpError::BodyTooLarge(n)) => assert_eq!(n, 99_999_999_999usize),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        let consumed = stream.position() as usize;
        assert_eq!(consumed, raw.len(), "head fully read, body never touched");
    }

    #[test]
    fn oversized_head_is_a_typed_413_not_a_400() {
        let limits = RequestLimits { max_head_bytes: 32, max_body_bytes: 16, ..Default::default() };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        let mut stream = Cursor::new(raw.into_bytes());
        assert!(matches!(read_request(&mut stream, &limits), Err(HttpError::HeadTooLarge(_))));
    }

    #[test]
    fn body_reads_are_chunked_and_tolerate_short_reads() {
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = buf.len().min(1);
                self.0.read(&mut buf[..take])
            }
        }
        let body = vec![b'z'; 300];
        let mut raw =
            format!("POST /u HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).into_bytes();
        raw.extend_from_slice(&body);
        let mut stream = OneByte(Cursor::new(raw));
        let req = read_request(&mut stream, &RequestLimits::default()).unwrap();
        assert_eq!(req.body, body);
    }

    #[test]
    fn timeout_kinds_surface_as_http_timeout() {
        struct Stall;
        impl Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "deadline"))
            }
        }
        assert!(matches!(
            read_request(&mut Stall, &RequestLimits::default()),
            Err(HttpError::Timeout)
        ));
    }

    #[test]
    fn responses_roundtrip_through_read_response() {
        let resp = Response::json(429, "{\"error\":\"rate\"}".to_string())
            .with_header("Retry-After", "7".to_string());
        let mut wire = Vec::new();
        resp.send(&mut wire);
        let (status, retry_after, body) = read_response(&mut Cursor::new(wire), 64 << 20).unwrap();
        assert_eq!(status, 429);
        assert_eq!(retry_after, Some(7));
        assert_eq!(body, b"{\"error\":\"rate\"}");
    }

    #[test]
    fn truncated_response_bodies_are_typed_errors() {
        let mut wire = Vec::new();
        Response::text(200, b"full body".to_vec()).send(&mut wire);
        wire.truncate(wire.len() - 3); // lose the tail mid-body
        assert!(matches!(
            read_response(&mut Cursor::new(wire), 64 << 20),
            Err(HttpError::Malformed("truncated response body"))
        ));
    }

    #[test]
    fn over_cap_responses_are_typed_too_large_not_malformed() {
        let mut wire = Vec::new();
        Response::text(200, vec![b'x'; 4096]).send(&mut wire);
        assert!(matches!(
            read_response(&mut Cursor::new(wire.clone()), 1024),
            Err(HttpError::ResponseTooLarge(_))
        ));
        // The same bytes under a sufficient cap parse fine.
        let (status, _, body) = read_response(&mut Cursor::new(wire), 64 << 10).unwrap();
        assert_eq!((status, body.len()), (200, 4096));
    }

    #[test]
    fn trickled_request_hits_the_absolute_deadline() {
        // Each read yields one byte promptly — never a per-read timeout —
        // and the head never terminates. Only the absolute request
        // deadline can end this; without it the loop runs until the head
        // cap after max_head_bytes reads.
        struct Trickle;
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                buf[0] = b'a';
                Ok(1)
            }
        }
        let limits = RequestLimits {
            request_deadline: Duration::from_millis(30),
            ..RequestLimits::default()
        };
        let begun = Instant::now();
        assert!(matches!(read_request(&mut Trickle, &limits), Err(HttpError::Timeout)));
        assert!(begun.elapsed() < Duration::from_secs(5), "deadline must fire promptly");
    }

    #[test]
    fn trickled_body_hits_the_absolute_deadline_too() {
        // A complete head followed by a body that trickles forever: the
        // body loop shares the same absolute budget.
        struct TrickleBody {
            head: Cursor<Vec<u8>>,
        }
        impl Read for TrickleBody {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.head.read(&mut buf[..1]) {
                    Ok(0) | Err(_) => {
                        std::thread::sleep(Duration::from_millis(1));
                        buf[0] = b'z';
                        Ok(1)
                    }
                    Ok(n) => Ok(n),
                }
            }
        }
        let head = b"POST /u HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec();
        let mut stream = TrickleBody { head: Cursor::new(head) };
        let limits = RequestLimits {
            request_deadline: Duration::from_millis(30),
            ..RequestLimits::default()
        };
        assert!(matches!(read_request(&mut stream, &limits), Err(HttpError::Timeout)));
    }
}
