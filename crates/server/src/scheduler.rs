//! The fair scheduler: multiplexes every queued job over one shared
//! [`ParallelExecutor`] pool, preempting at checkpoint boundaries.
//!
//! ## Round structure
//!
//! The scheduler thread runs **rounds**. Each round picks at most one
//! runnable job per tenant — round-robin over tenants, starting after the
//! tenant served first in the previous round — up to the pool width, and
//! runs those slices concurrently on the executor. A tenant with ten
//! queued jobs and a tenant with one therefore get the same share of the
//! pool, not shares proportional to their queue depth.
//!
//! ## Preemption
//!
//! A slice is a guarded `Resumable` run whose operations budget is the
//! job's accumulated spend plus one increment (`slice_ops`). When the
//! budget trips, the DISC partition loop aborts cooperatively at the next
//! checkpoint, the sink flushes a durable snapshot, and the job requeues —
//! preemption *is* the checkpoint mechanism, so a preempted job loses at
//! most the work since the last partition boundary, and the resumed run is
//! bit-identical to an uninterrupted one. A slice that tripped its budget
//! without completing a new partition doubles the job's next increment:
//! re-derivation cost (re-charging the snapshot plus re-scanning the
//! interrupted partition) can exceed a small increment, and unbounded
//! doubling guarantees eventual progress for any partition size.
//!
//! ## Drain
//!
//! `drain()` cancels every running slice's token (not the jobs): slices
//! abort at their next checkpoint, flush snapshots, and requeue. The
//! scheduler thread then exits, leaving every unfinished job queued with a
//! durable checkpoint — the restart path re-submits them and `Resumable`
//! picks the snapshots up.

use crate::cache::{CacheKey, RenderedResult, ResultCache};
use crate::job::{Job, JobError, JobState};
use crate::limits::{QuotaConfig, QuotaDenial, TokenBucket};
use crate::registry::DbEntry;
use disc_algo::{DiscAll, DynamicDiscAll, ParallelDiscAll, Resumable};
use disc_core::{
    AbortReason, CancelToken, FallbackMiner, GuardedResult, MinSupport, MineGuard, MineOutcome,
    ParallelExecutor, ResourceBudget, SequentialMiner, SharedCounters,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Executor pool width — the number of slices mined concurrently.
    pub threads: usize,
    /// Initial per-slice operations increment.
    pub slice_ops: u64,
    /// Checkpoint cadence inside a slice (`Resumable::with_every`).
    pub checkpoint_every: u64,
    /// Per-tenant quota ceilings, enforced at job admission.
    pub quotas: QuotaConfig,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            threads: 2,
            slice_ops: 2_000,
            checkpoint_every: 1,
            quotas: QuotaConfig::default(),
        }
    }
}

/// Per-tenant accounting, aggregated from finished slices.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantSpend {
    /// Jobs ever submitted.
    pub jobs: u64,
    /// Guard operations charged by this tenant's slices.
    pub ops: u64,
    /// Patterns noted by this tenant's slices.
    pub patterns: u64,
    /// Slices run.
    pub slices: u64,
}

/// A granted admission, returned by [`Scheduler::admit_job`]. While alive
/// it holds one reserved concurrency slot for its tenant (when that quota
/// is configured), so the gap between passing the gate and the job landing
/// in the scheduler's registry is closed against concurrent submissions.
/// Dropping it — normally right after [`Scheduler::submit`], or on any
/// error path in between — releases the reservation.
pub struct AdmissionPermit<'a> {
    sched: &'a Scheduler,
    /// `Some` while a concurrency slot is reserved.
    tenant: Option<String>,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(tenant) = self.tenant.take() {
            let mut reserved = self.sched.reserved.lock().unwrap();
            if let Some(n) = reserved.get_mut(&tenant) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    reserved.remove(&tenant);
                }
            }
        }
    }
}

struct SchedState {
    /// Queued job ids in arrival order (within-tenant FIFO).
    queue: Vec<u64>,
    /// Round-robin cursor: index into the sorted tenant list of the tenant
    /// to serve *first* next round.
    next_tenant: usize,
    /// Whether a drain was requested.
    draining: bool,
    /// Live slices (so drain can count down).
    running: usize,
}

/// The scheduler: owns the queue, the executor, and the result cache.
pub struct Scheduler {
    cfg: SchedulerConfig,
    jobs_dir: PathBuf,
    executor: ParallelExecutor,
    state: Mutex<SchedState>,
    wake: Condvar,
    /// All jobs ever submitted, by id.
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    /// Per-tenant spend.
    tenants: Mutex<HashMap<String, TenantSpend>>,
    /// Per-tenant token buckets (lazily created on first submission,
    /// LRU-bounded at [`QuotaConfig::MAX_TRACKED_BUCKETS`]).
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Concurrency slots reserved by an [`AdmissionPermit`] but not yet
    /// registered in `jobs` — the bridge that makes the concurrency check
    /// atomic across the admit → submit window.
    reserved: Mutex<HashMap<String, usize>>,
    /// The result cache.
    pub cache: Mutex<ResultCache>,
    /// Registered databases are resolved by the API layer; the scheduler
    /// only needs each job's entry, captured at submit time.
    db_of_job: Mutex<HashMap<u64, Arc<DbEntry>>>,
    /// Times a miner was actually invoked (one per slice). A cache-served
    /// query never increments this — the acceptance check for "repeat
    /// query did not re-mine" reads it.
    pub mine_invocations: AtomicU64,
    stop: AtomicBool,
}

impl Scheduler {
    /// A scheduler checkpointing jobs under `jobs_dir/<id>/`.
    pub fn new(cfg: SchedulerConfig, jobs_dir: PathBuf, cache_entries: usize) -> Scheduler {
        let threads = cfg.threads.max(1);
        Scheduler {
            executor: ParallelExecutor::with_threads(threads),
            cfg,
            jobs_dir,
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                next_tenant: 0,
                draining: false,
                running: 0,
            }),
            wake: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            buckets: Mutex::new(HashMap::new()),
            reserved: Mutex::new(HashMap::new()),
            cache: Mutex::new(ResultCache::new(cache_entries)),
            db_of_job: Mutex::new(HashMap::new()),
            mine_invocations: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The checkpoint directory of job `id`.
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.jobs_dir.join(id.to_string())
    }

    /// Quota gate, checked by the API layer *before* a job (or even a
    /// cache lookup) is admitted. Checks are ordered cheapest-first and
    /// every refusal is typed so the 429 can say which ceiling tripped:
    ///
    /// 1. **rate** — the tenant's token bucket (one token per submission);
    /// 2. **concurrency** — live (queued or running) jobs of this tenant,
    ///    plus slots already reserved by outstanding permits;
    /// 3. **cumulative ops** — the tenant's total charged operations.
    ///
    /// The rate bucket is charged even when the other checks then refuse:
    /// a tenant hammering a tripped ceiling is exactly the traffic the
    /// bucket exists to meter.
    ///
    /// On success the returned [`AdmissionPermit`] holds the tenant's
    /// concurrency slot until it is dropped — the caller keeps it alive
    /// across [`Scheduler::submit`] so concurrent submissions from one
    /// tenant cannot all pass the gate between the count and the insert
    /// (check-then-act). The count-plus-reserve happens under one lock;
    /// the brief window where a just-submitted job is counted both live
    /// and reserved errs conservative (a racing submission may see one
    /// phantom slot), never over the ceiling.
    pub fn admit_job(&self, tenant: &str) -> Result<AdmissionPermit<'_>, QuotaDenial> {
        let quotas = &self.cfg.quotas;
        if let Some(rate) = quotas.rate {
            let mut buckets = self.buckets.lock().unwrap();
            if !buckets.contains_key(tenant) && buckets.len() >= QuotaConfig::MAX_TRACKED_BUCKETS {
                // Bound the map against tenant-name rotation: evict the
                // least-recently-used bucket (see the QuotaConfig trust
                // model — this caps memory, it does not authenticate).
                if let Some(lru) =
                    buckets.iter().min_by_key(|(_, b)| b.last_used()).map(|(name, _)| name.clone())
                {
                    buckets.remove(&lru);
                }
            }
            let bucket =
                buckets.entry(tenant.to_string()).or_insert_with(|| TokenBucket::new(rate));
            if let Err(retry_after) = bucket.try_take() {
                return Err(QuotaDenial::Rate { retry_after });
            }
        }
        let mut permit = AdmissionPermit { sched: self, tenant: None };
        if let Some(limit) = quotas.max_concurrent_jobs {
            // One lock spans counting and reserving: a concurrent admit
            // for the same tenant serializes here and sees this
            // reservation, closing the admit → submit race.
            let mut reserved = self.reserved.lock().unwrap();
            let pending = reserved.get(tenant).copied().unwrap_or(0);
            let live = self
                .jobs
                .lock()
                .unwrap()
                .values()
                .filter(|j| {
                    j.spec.tenant == tenant
                        && matches!(
                            j.inner.lock().unwrap().state,
                            JobState::Queued | JobState::Running
                        )
                })
                .count();
            if live + pending >= limit {
                return Err(QuotaDenial::Concurrency { limit, live: live + pending });
            }
            *reserved.entry(tenant.to_string()).or_insert(0) += 1;
            permit.tenant = Some(tenant.to_string());
        }
        if let Some(limit) = quotas.max_cumulative_ops {
            let spent = self.tenants.lock().unwrap().get(tenant).map_or(0, |s| s.ops);
            if spent >= limit {
                return Err(QuotaDenial::CumulativeOps { limit, spent });
            }
        }
        Ok(permit)
    }

    /// Token buckets currently tracked (stats; tests assert the LRU bound).
    pub fn tracked_buckets(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }

    /// Queued jobs + running slices right now — the scheduler's share of
    /// the backlog behind the load-aware `Retry-After`.
    pub fn load(&self) -> usize {
        let state = self.state.lock().unwrap();
        state.queue.len() + state.running
    }

    /// The executor pool width (capacity input to the shed estimate).
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Registers a job and, unless it is already terminal (cache hit),
    /// queues it. Also records the tenant's submission.
    pub fn submit(&self, job: Arc<Job>, db: Arc<DbEntry>) {
        let id = job.spec.id;
        self.tenants.lock().unwrap().entry(job.spec.tenant.clone()).or_default().jobs += 1;
        let terminal = job.inner.lock().unwrap().state.is_terminal();
        self.jobs.lock().unwrap().insert(id, Arc::clone(&job));
        self.db_of_job.lock().unwrap().insert(id, db);
        if !terminal {
            let mut state = self.state.lock().unwrap();
            state.queue.push(id);
            self.wake.notify_all();
        }
    }

    /// Records a job that is already terminal and has no database entry —
    /// the restart path uses this for jobs whose database failed to reload.
    pub fn submit_terminal(&self, job: Arc<Job>) {
        self.tenants.lock().unwrap().entry(job.spec.tenant.clone()).or_default().jobs += 1;
        self.jobs.lock().unwrap().insert(job.spec.id, job);
    }

    /// Looks up a job.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(&id).cloned()
    }

    /// All jobs, sorted by id.
    pub fn list_jobs(&self) -> Vec<Arc<Job>> {
        let mut all: Vec<_> = self.jobs.lock().unwrap().values().cloned().collect();
        all.sort_by_key(|j| j.spec.id);
        all
    }

    /// Per-tenant spend, sorted by tenant name.
    pub fn tenant_spend(&self) -> Vec<(String, TenantSpend)> {
        let mut all: Vec<_> =
            self.tenants.lock().unwrap().iter().map(|(k, v)| (k.clone(), *v)).collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Counts of jobs per state name.
    pub fn job_state_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for job in self.jobs.lock().unwrap().values() {
            *counts.entry(job.inner.lock().unwrap().state.name()).or_default() += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }

    /// Requests a graceful drain: running slices are cancelled at their
    /// next checkpoint and requeued; the scheduler loop exits once idle.
    pub fn drain(&self) {
        let mut state = self.state.lock().unwrap();
        state.draining = true;
        // Trip every live slice token. Jobs stay Running until their slice
        // returns; the settle step requeues them because their state is
        // still Running (not Cancelled) when the abort comes back.
        for job in self.jobs.lock().unwrap().values() {
            let inner = job.inner.lock().unwrap();
            if inner.state == JobState::Running {
                if let Some(token) = &inner.slice_token {
                    token.cancel();
                }
            }
        }
        self.wake.notify_all();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// The scheduler loop. Runs until [`Scheduler::drain`]; returns the ids
    /// of jobs left queued (checkpointed, resumable after restart).
    pub fn run_loop(&self) -> Vec<u64> {
        loop {
            let batch = {
                let mut state = self.state.lock().unwrap();
                loop {
                    // Draining: never start another slice. Jobs a drain
                    // preempted are back in the queue with durable
                    // checkpoints — exactly what the restart path wants.
                    if self.stop.load(Ordering::SeqCst) || state.draining {
                        return state.queue.clone();
                    }
                    let batch = self.pick_batch(&mut state);
                    if !batch.is_empty() {
                        state.running = batch.len();
                        break batch;
                    }
                    let (next, _) =
                        self.wake.wait_timeout(state, Duration::from_millis(200)).unwrap();
                    state = next;
                }
            };

            // One executor run per round: every picked slice mines
            // concurrently on the shared pool. The coordinator guard is
            // unlimited — per-job budgets live in the slice guards built
            // inside the task, so one job's abort cannot cancel a sibling
            // tenant's slice.
            let coordinator = MineGuard::unlimited();
            self.executor.run(&coordinator, batch, |_worker, job: Arc<Job>, _out: &mut ()| {
                self.run_slice(&job);
                Ok(())
            });
            let mut state = self.state.lock().unwrap();
            state.running = 0;
            self.wake.notify_all();
        }
    }

    /// Hard-stops the loop (tests); prefer [`Scheduler::drain`].
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Picks at most one queued job per tenant, round-robin starting at the
    /// cursor, bounded by the pool width. Drops cancelled ids on the floor.
    fn pick_batch(&self, state: &mut SchedState) -> Vec<Arc<Job>> {
        let jobs = self.jobs.lock().unwrap();
        state.queue.retain(|id| {
            jobs.get(id).is_some_and(|j| j.inner.lock().unwrap().state == JobState::Queued)
        });
        if state.queue.is_empty() {
            return Vec::new();
        }
        // Tenants with queued work, in sorted order for a stable rotation.
        let mut tenants: Vec<&str> =
            state.queue.iter().map(|id| jobs[id].spec.tenant.as_str()).collect();
        tenants.sort_unstable();
        tenants.dedup();
        let start = state.next_tenant % tenants.len();
        let mut picked: Vec<Arc<Job>> = Vec::new();
        let mut picked_ids: Vec<u64> = Vec::new();
        for step in 0..tenants.len() {
            if picked.len() >= self.executor.threads() {
                break;
            }
            let tenant = tenants[(start + step) % tenants.len()];
            // Oldest queued job of this tenant.
            if let Some(&id) = state.queue.iter().find(|id| jobs[id].spec.tenant.as_str() == tenant)
            {
                let job = Arc::clone(&jobs[&id]);
                job.inner.lock().unwrap().state = JobState::Running;
                picked.push(job);
                picked_ids.push(id);
            }
        }
        state.queue.retain(|id| !picked_ids.contains(id));
        if !tenants.is_empty() {
            state.next_tenant = (start + 1) % tenants.len();
        }
        picked
    }

    /// Runs one slice of `job`: build the guarded resumable miner, mine
    /// until the slice budget trips (or the job finishes), settle the
    /// outcome.
    fn run_slice(&self, job: &Arc<Job>) {
        let Some(db) = self.db_of_job.lock().unwrap().get(&job.spec.id).cloned() else {
            self.fail(job, "database entry vanished", false);
            return;
        };

        // Slice guard: fresh child-less token (a cancelled token cannot be
        // un-cancelled, so preempted jobs need a new one each slice), fresh
        // shared counters for lock-free status reads, and an ops budget one
        // increment above the job's accumulated spend, clamped to the
        // job-wide caps.
        let slice_target = {
            let inner = job.inner.lock().unwrap();
            let want = inner.ops.saturating_add(inner.slice_ops);
            match job.spec.max_ops {
                Some(cap) => want.min(cap),
                None => want,
            }
        };
        let mut budget = ResourceBudget::unlimited().with_max_ops(slice_target);
        if let Some(p) = job.spec.max_patterns {
            budget = budget.with_max_patterns(p);
        }
        if let Some(deadline) = job.spec.deadline {
            let remaining = deadline.saturating_sub(job.submitted.elapsed());
            if remaining.is_zero() {
                self.fail(job, "job deadline exceeded", false);
                return;
            }
            budget = budget.with_deadline(remaining);
        }
        let token = CancelToken::new();
        let counters = Arc::new(SharedCounters::new());
        let guard = MineGuard::new(token.clone(), budget)
            .with_checkpoint_interval(64)
            .with_shared_counters(Arc::clone(&counters));
        {
            let mut inner = job.inner.lock().unwrap();
            inner.slice_token = Some(token.clone());
            inner.live = Some(Arc::clone(&counters));
            inner.slices += 1;
        }

        self.mine_invocations.fetch_add(1, Ordering::Relaxed);
        let dir = self.job_dir(job.spec.id);
        let minsup = MinSupport::Count(job.spec.delta);
        let run = mine_slice(
            &job.spec.algo,
            &dir,
            self.cfg.checkpoint_every,
            &db.mine_db,
            minsup,
            &guard,
        );

        self.settle(job, &db, run);
    }

    /// Folds a finished slice back into the job and the books.
    fn settle(&self, job: &Arc<Job>, db: &Arc<DbEntry>, run: GuardedResult) {
        let progressed;
        let new_work;
        {
            let mut inner = job.inner.lock().unwrap();
            inner.live = None;
            inner.slice_token = None;
            let before = inner.progress.as_ref().map_or(0, |p| p.done_partitions);
            let ckpt = self.job_dir(job.spec.id).join(disc_algo::CHECKPOINT_FILE);
            inner.progress = disc_core::peek_progress(&ckpt).ok();
            let after = inner.progress.as_ref().map_or(0, |p| p.done_partitions);
            progressed = after > before;
            // Cumulative spend: a resumed slice re-charges the snapshot's
            // ops, so the slice guard's total is already job-cumulative.
            // The checkpoint's own counter is the floor — it covers the
            // `auto` case where the deciding fallback stage aborted at
            // preflight and reports near-zero stats.
            let boundary_ops = inner.progress.as_ref().map_or(0, |p| p.ops);
            let total_ops = run.stats.ops.max(boundary_ops);
            new_work = (
                total_ops.saturating_sub(inner.ops),
                run.stats.patterns.saturating_sub(inner.patterns) as u64,
            );
            inner.ops = total_ops;
            inner.patterns = inner.patterns.max(run.stats.patterns);
        }
        {
            let mut tenants = self.tenants.lock().unwrap();
            let spend = tenants.entry(job.spec.tenant.clone()).or_default();
            spend.slices += 1;
            // Charge the *new* work only: the checkpoint re-charge is
            // bookkeeping, not computation the tenant consumed again.
            spend.ops = spend.ops.saturating_add(new_work.0);
            spend.patterns = spend.patterns.saturating_add(new_work.1);
        }

        match run.outcome {
            MineOutcome::Complete => self.finish(job, db, &run),
            MineOutcome::Partial { reason } => match reason {
                AbortReason::Cancelled => {
                    // Tenant cancel marked the job Cancelled before tripping
                    // the token; a drain left it Running — requeue so the
                    // checkpoint survives into the next process.
                    let mut inner = job.inner.lock().unwrap();
                    if inner.state == JobState::Running {
                        inner.state = JobState::Queued;
                        inner.preemptions += 1;
                        drop(inner);
                        self.requeue(job.spec.id);
                    }
                }
                AbortReason::BudgetExhausted => {
                    let cap = job.spec.max_ops;
                    let at_cap = cap.is_some_and(|c| run.stats.ops >= c);
                    let over_patterns =
                        job.spec.max_patterns.is_some_and(|m| run.stats.patterns >= m);
                    if at_cap || over_patterns {
                        self.fail(job, "tenant resource budget exhausted", false);
                    } else {
                        let mut inner = job.inner.lock().unwrap();
                        if !progressed {
                            // No new partition boundary: the increment was
                            // eaten by re-derivation. Double it.
                            inner.slice_ops = inner.slice_ops.saturating_mul(2);
                        }
                        if inner.state == JobState::Running {
                            inner.state = JobState::Queued;
                            inner.preemptions += 1;
                            drop(inner);
                            self.requeue(job.spec.id);
                        }
                    }
                }
                AbortReason::DeadlineExceeded => self.fail(job, "job deadline exceeded", false),
                AbortReason::Panicked => self.fail(job, "miner panicked", false),
            },
        }
    }

    /// Completes a job: translate items back, render, cache, mark Done.
    fn finish(&self, job: &Arc<Job>, db: &Arc<DbEntry>, run: &GuardedResult) {
        let restored;
        let result = match &db.mapping {
            Some(mapping) => {
                restored = mapping.restore_result(&run.result);
                &restored
            }
            None => &run.result,
        };
        let lines: Vec<(u64, String)> = match job.spec.mode.as_str() {
            "closed" => result.closed_patterns().iter().map(|(p, s)| (*s, p.to_string())).collect(),
            "maximal" => {
                result.maximal_patterns().iter().map(|(p, s)| (*s, p.to_string())).collect()
            }
            _ => result.iter().map(|(p, s)| (s, p.to_string())).collect(),
        };
        let rendered = Arc::new(RenderedResult { lines, total_patterns: result.len() });
        self.persist_result(job.spec.id, &rendered);
        if !job.spec.no_cache {
            self.cache.lock().unwrap().insert(
                CacheKey {
                    fingerprint: db.fingerprint,
                    delta: job.spec.delta,
                    algo: job.spec.algo.clone(),
                    mode: job.spec.mode.clone(),
                },
                Arc::clone(&rendered),
            );
        }
        let mut inner = job.inner.lock().unwrap();
        if inner.state == JobState::Running {
            inner.state = JobState::Done;
            inner.result = Some(rendered);
        }
        // A cancel that raced completion stays Cancelled: the tenant asked
        // for the job to die and the result was never exposed.
    }

    fn fail(&self, job: &Arc<Job>, message: &str, transient: bool) {
        let mut inner = job.inner.lock().unwrap();
        if !inner.state.is_terminal() {
            inner.state = JobState::Failed;
            inner.error = Some(JobError { message: message.to_string(), transient });
        }
    }

    fn requeue(&self, id: u64) {
        let mut state = self.state.lock().unwrap();
        state.queue.push(id);
        self.wake.notify_all();
    }

    /// Writes a finished job's rendered lines next to its checkpoint
    /// (atomic tmp + rename), so a restarted server can serve results for
    /// jobs that completed before the restart. Failure is logged, not
    /// fatal — the in-memory result still serves this process.
    pub fn persist_result(&self, id: u64, result: &RenderedResult) {
        let dir = self.job_dir(id);
        let path = dir.join("result.tsv");
        let tmp = dir.join("result.tsv.tmp");
        let write = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &result.render(1, 0, usize::MAX))?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = write {
            eprintln!("disc-server: cannot persist result for job {id}: {e}");
        }
    }
}

/// Builds and runs the guarded resumable miner for one slice.
///
/// Every algorithm checkpoints into the same `dir/mine.dscck`, and any
/// checkpoint-aware miner can resume any snapshot, so a preempted `auto`
/// job whose first stage wrote the snapshot resumes cleanly in a later
/// slice regardless of which stage runs.
fn mine_slice(
    algo: &str,
    dir: &std::path::Path,
    every: u64,
    db: &disc_core::SequenceDatabase,
    minsup: MinSupport,
    guard: &MineGuard,
) -> GuardedResult {
    match algo {
        "dynamic" => Resumable::new(DynamicDiscAll::default(), dir)
            .with_every(every)
            .mine_guarded(db, minsup, guard),
        "parallel" => Resumable::new(ParallelDiscAll::default(), dir)
            .with_every(every)
            .mine_guarded(db, minsup, guard),
        "auto" => {
            // Dynamic first (fastest in the benches), falling back to plain
            // DISC-all on a panic. Budget exhaustion also advances the
            // chain, but the second stage's preflight check aborts
            // immediately on the already-spent shared counters, so a
            // preempted auto job costs one cheap extra stage probe at most.
            let chain = FallbackMiner::new(vec![
                Box::new(Resumable::new(DynamicDiscAll::default(), dir).with_every(every)),
                Box::new(Resumable::new(DiscAll::default(), dir).with_every(every)),
            ]);
            chain.mine_guarded(db, minsup, guard)
        }
        // "disc-all" plus anything the API validation let through.
        _ => Resumable::new(DiscAll::default(), dir)
            .with_every(every)
            .mine_guarded(db, minsup, guard),
    }
}

/// The algorithms the server accepts.
pub fn valid_algo(algo: &str) -> bool {
    matches!(algo, "disc-all" | "dynamic" | "parallel" | "auto")
}

/// The result projections the server accepts.
pub fn valid_mode(mode: &str) -> bool {
    matches!(mode, "all" | "closed" | "maximal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::RateLimit;

    fn sched(quotas: QuotaConfig) -> Scheduler {
        let cfg = SchedulerConfig { threads: 1, quotas, ..SchedulerConfig::default() };
        let dir = std::env::temp_dir().join(format!("disc-sched-ut-{}", std::process::id()));
        Scheduler::new(cfg, dir, 4)
    }

    #[test]
    fn admission_permit_reserves_the_concurrency_slot_until_dropped() {
        let s = sched(QuotaConfig { max_concurrent_jobs: Some(1), ..QuotaConfig::default() });
        // No job is ever registered: the permit alone must hold the slot,
        // exactly the admit → submit window the reservation closes.
        let first = s.admit_job("t").expect("first admission fits the ceiling");
        match s.admit_job("t") {
            Err(QuotaDenial::Concurrency { limit: 1, live: 1 }) => {}
            Err(other) => panic!("expected a concurrency denial, got {other:?}"),
            Ok(_) => panic!("second admission must be denied while the permit lives"),
        }
        // Another tenant's slot is unaffected.
        let _other = s.admit_job("u").expect("tenants reserve independently");
        drop(first);
        let _again = s.admit_job("t").expect("dropping the permit frees the slot");
    }

    #[test]
    fn token_buckets_are_lru_bounded_under_tenant_rotation() {
        let s = sched(QuotaConfig {
            rate: Some(RateLimit { burst: 5, per_sec: 0.0 }),
            ..QuotaConfig::default()
        });
        for i in 0..QuotaConfig::MAX_TRACKED_BUCKETS + 50 {
            let _ = s.admit_job(&format!("rotating-{i}"));
        }
        assert!(
            s.tracked_buckets() <= QuotaConfig::MAX_TRACKED_BUCKETS,
            "rotating tenant names must not grow the bucket map without bound \
             (got {})",
            s.tracked_buckets()
        );
    }
}
