//! Overload-safety tests over real TCP sockets: malformed-HTTP
//! robustness, slow-loris deadlines, load shedding with computed
//! `Retry-After`, and per-tenant quota enforcement.
//!
//! The contract under test (ALGORITHM.md §17): the server answers every
//! hostile or broken request with a typed 4xx/5xx — 400 malformed, 408
//! deadline, 413 oversized, 429 quota, 503 shed — or closes cleanly;
//! it never panics, never hangs past its deadlines, and a flooding
//! tenant cannot keep a well-behaved tenant's job from completing.

use disc_algo::DiscAll;
use disc_core::{MinSupport, SequenceDatabase, SequentialMiner};
use disc_datagen::QuestConfig;
use disc_server::{LimitsConfig, QuotaConfig, RateLimit, SchedulerConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Harness.

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("disc-overload-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Starts a server with tight, test-sized limits and quotas.
fn start(
    data_dir: &Path,
    limits: LimitsConfig,
    quotas: QuotaConfig,
    slice_ops: u64,
) -> (Server, SocketAddr, std::thread::JoinHandle<Vec<u64>>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        scheduler: SchedulerConfig { threads: 2, slice_ops, quotas, ..SchedulerConfig::default() },
        cache_entries: 16,
        limits,
        ..ServerConfig::default()
    };
    let server = Server::new(cfg);
    let runner = server.clone();
    let handle = std::thread::spawn(move || runner.run().expect("server run"));
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Some(a) = server.local_addr() {
            break a;
        }
        assert!(Instant::now() < deadline, "server never bound");
        std::thread::sleep(Duration::from_millis(5));
    };
    (server, addr, handle)
}

fn tight_limits() -> LimitsConfig {
    LimitsConfig {
        max_connections: 4,
        queue_depth: 8,
        max_head_bytes: 2048,
        max_body_bytes: 4096,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        request_deadline: Duration::from_secs(5),
    }
}

/// One HTTP exchange; returns (status, headers+body text). Status 0 means
/// the server closed without a response (a clean close).
fn raw_exchange(addr: SocketAddr, payload: &[u8], shutdown_write: bool) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload).unwrap();
    if shutdown_write {
        let _ = s.shutdown(Shutdown::Write);
    }
    let mut resp = Vec::new();
    let _ = s.read_to_end(&mut resp); // a reset instead of EOF is also a clean close
    if resp.is_empty() {
        return (0, String::new());
    }
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status = text.get(9..12).and_then(|s| s.parse().ok()).unwrap_or(0);
    (status, text)
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut payload = head.into_bytes();
    payload.extend_from_slice(body);
    let (status, text) = raw_exchange(addr, &payload, false);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn header_value(text: &str, name: &str) -> Option<String> {
    text.lines()
        .take_while(|l| !l.is_empty())
        .find(|l| l.to_ascii_lowercase().starts_with(&format!("{name}:").to_ascii_lowercase()))
        .map(|l| l.split_once(':').unwrap().1.trim().to_string())
}

fn wait_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), b"");
        assert_eq!(status, 200, "{body}");
        for state in ["done", "failed", "cancelled"] {
            if body.contains(&format!("\"state\":\"{state}\"")) {
                return state.to_string();
            }
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn job_id(body: &str) -> u64 {
    let at = body.find("\"id\":").expect("id field") + 5;
    body[at..].chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
}

fn small_db(seed: u64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(40)
        .with_nitems(30)
        .with_pools(30, 60)
        .with_slen(6.0)
        .with_seed(seed)
        .generate()
}

fn expected(db: &SequenceDatabase, delta: u64) -> String {
    DiscAll::default()
        .mine(db, MinSupport::Count(delta))
        .iter()
        .map(|(p, s)| format!("{s}\t{p}\n"))
        .collect()
}

// ---------------------------------------------------------------------
// Malformed-HTTP robustness (fuzz-style corpus).

#[test]
fn malformed_corpus_always_gets_typed_status_or_clean_close() {
    let dir = temp_dir("malformed");
    let (_server, addr, handle) = start(&dir, tight_limits(), QuotaConfig::default(), 1_000_000);

    let big_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4000));
    let corpus: Vec<(&str, Vec<u8>, bool)> = vec![
        // (label, payload, shutdown-write-after-send)
        ("truncated request line", b"GET /heal".to_vec(), true),
        ("empty connection", Vec::new(), true),
        ("not http at all", b"\x00\x01\x02\x03 BINARY NOISE\r\n\r\n".to_vec(), true),
        ("invalid utf-8 head", b"G\xFFT / HTTP/1.1\r\n\r\n".to_vec(), true),
        ("lowercase method", b"get / HTTP/1.1\r\n\r\n".to_vec(), true),
        ("missing version", b"GET /\r\n\r\n".to_vec(), true),
        ("header without colon", b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n".to_vec(), true),
        (
            "garbage content-length",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            true,
        ),
        (
            "negative content-length",
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            true,
        ),
        (
            "chunked transfer-encoding",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            true,
        ),
        (
            "premature eof mid-body",
            b"POST /dbs?name=x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort".to_vec(),
            true,
        ),
        ("oversized head", big_header.into_bytes(), true),
        (
            "declared body over the cap",
            b"POST /dbs?name=x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec(),
            true,
        ),
        ("bad percent encoding", b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(), true),
    ];

    for (label, payload, shutdown) in corpus {
        let begun = Instant::now();
        let (status, text) = raw_exchange(addr, &payload, shutdown);
        let elapsed = begun.elapsed();
        assert!(
            matches!(status, 0 | 400 | 408 | 413),
            "case {label:?}: unexpected status {status}: {text}"
        );
        // Nothing may hang past the read deadline plus slack — least of
        // all the huge declared Content-Length, which must be refused
        // from the header alone.
        assert!(elapsed < Duration::from_secs(5), "case {label:?} took {elapsed:?}");
        if label == "declared body over the cap" {
            assert_eq!(status, 413, "oversized declared body must be a prompt 413: {text}");
        }
        if label == "oversized head" {
            assert_eq!(status, 413, "oversized head must be 413: {text}");
        }
    }

    // The server survived the whole corpus.
    let (status, _) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "server must still serve after the corpus");

    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_gets_408_at_the_read_deadline() {
    let dir = temp_dir("loris");
    let (_server, addr, handle) = start(&dir, tight_limits(), QuotaConfig::default(), 1_000_000);

    // Send half a request and stall. The 300 ms read deadline must expire
    // and answer 408 — the handler thread is not wedgeable.
    let begun = Instant::now();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nHos").unwrap();
    let mut resp = Vec::new();
    let _ = s.read_to_end(&mut resp);
    let text = String::from_utf8_lossy(&resp);
    let elapsed = begun.elapsed();
    assert!(text.starts_with("HTTP/1.1 408"), "expected 408, got: {text}");
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(5),
        "408 must arrive at the deadline, not before or much after (took {elapsed:?})"
    );

    // The freed handler serves the next request normally.
    let (status, _) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);

    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trickling_loris_gets_408_at_the_absolute_request_deadline() {
    let dir = temp_dir("trickle");
    // Per-read deadline comfortably above the trickle interval: every
    // byte the client sends renews it, so only the absolute request
    // deadline can end this connection.
    let limits = LimitsConfig {
        read_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_millis(700),
        ..tight_limits()
    };
    let (_server, addr, handle) = start(&dir, limits, QuotaConfig::default(), 1_000_000);

    let begun = Instant::now();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Feed one header byte every 150 ms — forever, as far as the head cap
    // is concerned — while watching for the server's answer.
    let mut resp = Vec::new();
    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nX-Slow: ");
    loop {
        std::thread::sleep(Duration::from_millis(150));
        if s.write_all(b"a").is_err() {
            break; // server already closed on us — go read what it said
        }
        assert!(
            begun.elapsed() < Duration::from_secs(10),
            "trickle was never cut off: the absolute deadline did not fire"
        );
        // Poll for an early response without blocking the trickle.
        s.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        let mut probe = [0u8; 1024];
        match s.read(&mut probe) {
            Ok(n) if n > 0 => {
                resp.extend_from_slice(&probe[..n]);
                break;
            }
            _ => {}
        }
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    }
    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = s.read_to_end(&mut resp);
    let text = String::from_utf8_lossy(&resp);
    let elapsed = begun.elapsed();
    assert!(text.starts_with("HTTP/1.1 408"), "expected 408 for the trickler, got: {text}");
    assert!(
        elapsed >= Duration::from_millis(600) && elapsed < Duration::from_secs(10),
        "408 must arrive near the 700 ms absolute deadline (took {elapsed:?})"
    );

    // The freed handler serves the next request normally.
    let (status, _) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);

    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Load shedding.

#[test]
fn overflow_connections_are_shed_with_computed_retry_after() {
    let dir = temp_dir("shed");
    let limits = LimitsConfig {
        max_connections: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(3),
        ..tight_limits()
    };
    let (server, addr, handle) = start(&dir, limits, QuotaConfig::default(), 1_000_000);

    // Wedge the single handler with a stalled connection, fill the
    // one-deep queue with a second, then watch a third get shed.
    let mut wedge = TcpStream::connect(addr).unwrap();
    wedge.write_all(b"GET /h").unwrap(); // partial: holds the handler until its deadline
    std::thread::sleep(Duration::from_millis(300)); // let a worker pop it
    let mut queued = TcpStream::connect(addr).unwrap();
    queued.write_all(b"G").unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let the acceptor queue it

    let mut shed_seen = 0;
    for _ in 0..5 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut resp = Vec::new();
        let _ = s.read_to_end(&mut resp);
        let text = String::from_utf8_lossy(&resp);
        if text.starts_with("HTTP/1.1 503") {
            shed_seen += 1;
            let retry = header_value(&text, "Retry-After").expect("shed carries Retry-After");
            let secs: u32 = retry.parse().expect("numeric Retry-After");
            assert!((1..=60).contains(&secs), "computed Retry-After out of range: {secs}");
            assert!(text.contains("\"error\":\"server overloaded\""), "{text}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(shed_seen >= 1, "at least one overflow connection must be shed with 503");

    drop(wedge);
    drop(queued);
    // Give the pool time to time out the wedged sockets, then verify
    // recovery and that the stats counted the sheds.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (status, body) = http(addr, "GET", "/admin/stats", b"");
        if status == 200 {
            let at = body.find("\"shed\":").expect("shed counter") + 7;
            let shed: u64 = body[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap();
            assert!(shed >= shed_seen, "stats shed {shed} < observed {shed_seen}");
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered from saturation");
        std::thread::sleep(Duration::from_millis(100));
    }

    let _ = server; // keep alive until here
    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Quotas: a flooding tenant is refused; a polite tenant is unharmed.

#[test]
fn rate_quota_floods_get_429_and_the_polite_tenant_completes() {
    let dir = temp_dir("quota-rate");
    let quotas = QuotaConfig {
        // 3 immediate tokens, no refill: the flood runs dry deterministically.
        rate: Some(RateLimit { burst: 3, per_sec: 0.0 }),
        ..QuotaConfig::default()
    };
    let (_server, addr, handle) = start(&dir, tight_limits(), quotas, 1_000_000);

    let db = small_db(3);
    let encoded = disc_core::encode_database(&db);
    // The upload itself must fit the tight body cap — use a server with
    // a roomier cap if this ever grows.
    assert!(encoded.len() <= 4096, "test db too large for the configured cap");
    let (status, _) = http(addr, "POST", "/dbs?name=q", &encoded);
    assert_eq!(status, 201);

    // Tenant A floods: 3 admitted (the burst), the rest typed 429s.
    let mut admitted = Vec::new();
    let mut denied = 0;
    for _ in 0..8 {
        let (status, body) = http(addr, "POST", "/jobs?db=q&delta=6&tenant=flooder", b"");
        match status {
            200 | 202 => admitted.push(job_id(&body)),
            429 => {
                denied += 1;
                assert!(body.contains("\"quota\":\"rate\""), "429 must name the quota: {body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(admitted.len(), 3, "exactly the burst is admitted");
    assert_eq!(denied, 5, "every post-burst submission is refused");

    // The Retry-After header rides the rate 429.
    let head = "POST /jobs?db=q&delta=6&tenant=flooder HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
    let (status, text) = raw_exchange(addr, head.as_bytes(), false);
    assert_eq!(status, 429);
    assert!(header_value(&text, "Retry-After").is_some(), "rate 429 carries Retry-After: {text}");

    // Tenant B (own bucket) is admitted and completes, flood notwithstanding.
    let (status, body) = http(addr, "POST", "/jobs?db=q&delta=6&tenant=polite", b"");
    assert!(matches!(status, 200 | 202), "{status} {body}");
    let polite_job = job_id(&body);
    assert_eq!(wait_terminal(addr, polite_job), "done");
    let (status, served) = http(addr, "GET", &format!("/jobs/{polite_job}/result"), b"");
    assert_eq!(status, 200);
    assert_eq!(served, expected(&db, 6), "polite tenant's result is still byte-identical");

    // The admission stats counted the denials.
    let (_, stats) = http(addr, "GET", "/admin/stats", b"");
    let at = stats.find("\"quota_denials\":").expect("counter") + 16;
    let denials: u64 =
        stats[at..].chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap();
    assert!(denials >= 5, "stats quota_denials {denials} < 5");

    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrency_and_cumulative_ops_ceilings_are_typed() {
    let dir = temp_dir("quota-caps");
    let quotas =
        QuotaConfig { rate: None, max_concurrent_jobs: Some(1), max_cumulative_ops: Some(1) };
    // Small slices so the first job stays live while the second submits.
    let (_server, addr, handle) = start(&dir, tight_limits(), quotas, 300);

    let db = small_db(5);
    let (status, _) = http(addr, "POST", "/dbs?name=q", &disc_core::encode_database(&db));
    assert_eq!(status, 201);

    let (status, body) = http(addr, "POST", "/jobs?db=q&delta=6&tenant=t", b"");
    assert!(matches!(status, 200 | 202), "{status} {body}");
    let first = job_id(&body);

    // Immediately: the first job is queued/running → concurrency ceiling.
    let (status, body) = http(addr, "POST", "/jobs?db=q&delta=7&tenant=t", b"");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"quota\":\"concurrency\""), "{body}");

    assert_eq!(wait_terminal(addr, first), "done");

    // Finished mining charged ops ≥ 1 → the cumulative ceiling now trips,
    // with no Retry-After (waiting cannot un-spend the budget).
    let head = "POST /jobs?db=q&delta=8&tenant=t HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
    let (status, text) = raw_exchange(addr, head.as_bytes(), false);
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("\"quota\":\"cumulative_ops\""), "{text}");
    assert!(
        header_value(&text, "Retry-After").is_none(),
        "spent budget must not advertise a retry: {text}"
    );

    // A different tenant is untouched by t's spend.
    let (status, body) = http(addr, "POST", "/jobs?db=q&delta=6&tenant=fresh", b"");
    assert!(matches!(status, 200 | 202), "{status} {body}");

    http(addr, "POST", "/admin/drain", b"");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Readiness.

#[test]
fn readyz_flips_to_503_on_drain() {
    let dir = temp_dir("readyz");
    let (_server, addr, handle) = start(&dir, tight_limits(), QuotaConfig::default(), 1_000_000);

    let (status, body) = http(addr, "GET", "/readyz", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ready\":true"));

    // Drain via the admin route, then race the listener shutdown: any
    // readyz answered during the drain window must be a 503.
    let (status, _) = http(addr, "POST", "/admin/drain", b"");
    assert_eq!(status, 200);
    for _ in 0..20 {
        let Ok(mut s) = TcpStream::connect(addr) else { break };
        let _ = s.write_all(b"GET /readyz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let mut resp = Vec::new();
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = s.read_to_end(&mut resp);
        if resp.is_empty() {
            break; // listener already gone — also a correct outcome
        }
        let text = String::from_utf8_lossy(&resp);
        if text.starts_with("HTTP/1.1 503") {
            assert!(header_value(&text, "Retry-After").is_some(), "{text}");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
