//! End-to-end tests over a real TCP socket: a `Server` per test, driven by
//! a hand-rolled HTTP/1.1 client, checked against direct library mining.
//!
//! The invariants under test are the serving contract:
//!
//! * a served result is **byte-identical** to `disc-mine` on the same
//!   database and threshold, even when the job was preempted across many
//!   slices or across a drain/restart;
//! * a repeat query is served from the cache with **no miner invocation**;
//! * cancellation settles the job without corrupting its peers;
//! * two tenants make interleaved progress (fair round-robin);
//! * malformed requests get typed 4xx responses, never a hang or a panic.

use disc_algo::DiscAll;
use disc_core::{MinSupport, SequenceDatabase, SequentialMiner};
use disc_datagen::QuestConfig;
use disc_server::{SchedulerConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Harness.

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("disc-server-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start(
    data_dir: &Path,
    slice_ops: u64,
) -> (Server, SocketAddr, std::thread::JoinHandle<Vec<u64>>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        scheduler: SchedulerConfig { threads: 2, slice_ops, ..SchedulerConfig::default() },
        cache_entries: 16,
        ..ServerConfig::default()
    };
    let server = Server::new(cfg);
    let runner = server.clone();
    let handle = std::thread::spawn(move || runner.run().expect("server run"));
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Some(a) = server.local_addr() {
            break a;
        }
        assert!(Instant::now() < deadline, "server never bound");
        std::thread::sleep(Duration::from_millis(5));
    };
    (server, addr, handle)
}

/// One HTTP request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body).unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status: u16 = text.get(9..12).and_then(|s| s.parse().ok()).expect("status line");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, "GET", target, b"")
}

fn post(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, String) {
    http(addr, "POST", target, body)
}

fn drain(addr: SocketAddr, handle: std::thread::JoinHandle<Vec<u64>>) -> Vec<u64> {
    let (status, _) = post(addr, "/admin/drain", b"");
    assert_eq!(status, 200);
    handle.join().expect("server thread")
}

/// Polls `/jobs/{id}` until its state is terminal; returns the final state.
fn wait_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        let state = field(&body, "state");
        if state == "done" || state == "failed" || state == "cancelled" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Extracts a `"key":"value"` or `"key":value` field from a flat JSON body.
fn field(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let rest =
        &json[json.find(&needle).unwrap_or_else(|| panic!("{key} in {json}")) + needle.len()..];
    let rest = rest.strip_prefix('"').unwrap_or(rest);
    rest.split(['"', ',', '}']).next().unwrap().to_string()
}

/// The exact bytes `disc-mine` prints for this database and threshold.
fn expected(db: &SequenceDatabase, delta: u64) -> String {
    DiscAll::default()
        .mine(db, MinSupport::Count(delta))
        .iter()
        .map(|(p, s)| format!("{s}\t{p}\n"))
        .collect()
}

/// A database big enough that a small-slice job preempts many times.
fn quest_db(seed: u64) -> SequenceDatabase {
    QuestConfig::paper_table11()
        .with_ncust(60)
        .with_nitems(40)
        .with_pools(40, 80)
        .with_slen(8.0)
        .with_seed(seed)
        .generate()
}

// ---------------------------------------------------------------------
// Tests.

#[test]
fn round_trip_is_byte_identical_to_direct_mining() {
    let dir = temp_dir("roundtrip");
    let (_server, addr, handle) = start(&dir, 1_000_000);
    let db = quest_db(1);
    let (status, body) = post(addr, "/dbs?name=q1", &disc_core::encode_database(&db));
    assert_eq!(status, 201, "{body}");
    assert_eq!(field(&body, "rows"), "60");

    let (status, body) = post(addr, "/jobs?db=q1&delta=6&tenant=alice", b"");
    assert!(status == 202 || status == 200, "{status} {body}");
    assert_eq!(wait_terminal(addr, 1), "done");

    let (status, served) = get(addr, "/jobs/1/result");
    assert_eq!(status, 200);
    let want = expected(&db, 6);
    assert!(!want.is_empty(), "test database must produce patterns");
    assert_eq!(served, want, "served bytes differ from direct mining");

    // Pagination composes: offset/limit slice the same line stream.
    let (_, page0) = get(addr, "/jobs/1/result?offset=0&limit=3");
    let (_, page1) = get(addr, "/jobs/1/result?offset=3&limit=3");
    let first6: String = want.lines().take(6).map(|l| format!("{l}\n")).collect();
    assert_eq!(format!("{page0}{page1}"), first6);

    // min_length filters exactly like `disc-mine --min-length`.
    let (_, long_only) = get(addr, "/jobs/1/result?min_length=2");
    assert!(long_only.lines().count() < want.lines().count());
    assert!(long_only.lines().all(|l| want.contains(l)));

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_queries_hit_the_cache_without_mining() {
    let dir = temp_dir("cache");
    let (server, addr, handle) = start(&dir, 1_000_000);
    let db = quest_db(2);
    post(addr, "/dbs?name=q", &disc_core::encode_database(&db));

    let (_, first) = post(addr, "/jobs?db=q&delta=8", b"");
    assert_eq!(field(&first, "cached"), "false");
    assert_eq!(wait_terminal(addr, 1), "done");
    let invocations_after_first =
        server.scheduler().mine_invocations.load(std::sync::atomic::Ordering::Relaxed);
    assert!(invocations_after_first >= 1);

    // Same (db, δ, algo, mode): answered from the cache, born done.
    let (status, second) = post(addr, "/jobs?db=q&delta=8", b"");
    assert_eq!(status, 200, "cache hits answer immediately: {second}");
    assert_eq!(field(&second, "cached"), "true");
    assert_eq!(field(&second, "state"), "done");
    assert_eq!(
        server.scheduler().mine_invocations.load(std::sync::atomic::Ordering::Relaxed),
        invocations_after_first,
        "a cached hit must not invoke a miner"
    );

    // The cached job serves the same bytes as the mined one.
    let (_, a) = get(addr, "/jobs/1/result");
    let (_, b) = get(addr, "/jobs/2/result");
    assert_eq!(a, b);

    // A different threshold is a different key — mined, not served stale.
    let (status, third) = post(addr, "/jobs?db=q&delta=20", b"");
    assert_eq!(status, 202, "{third}");
    assert_eq!(wait_terminal(addr, 3), "done");
    let (_, stats) = get(addr, "/stats");
    assert_eq!(field(&stats, "hits"), "1");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_mid_run_settles_without_a_result() {
    let dir = temp_dir("cancel");
    // Tiny slices: the job is guaranteed to still be alive when the cancel
    // arrives, and cancellation lands on a running or queued slice.
    let (_server, addr, handle) = start(&dir, 50);
    let db = quest_db(3);
    post(addr, "/dbs?name=q", &disc_core::encode_database(&db));
    post(addr, "/jobs?db=q&delta=4", b"");

    let (status, body) = post(addr, "/jobs/1/cancel", b"");
    assert_eq!(status, 200);
    assert_eq!(field(&body, "state"), "cancelled");
    assert_eq!(wait_terminal(addr, 1), "cancelled");

    let (status, _) = get(addr, "/jobs/1/result");
    assert_eq!(status, 409, "cancelled jobs have no result");

    // Cancelling a terminal job is a no-op, not an error.
    let (status, body) = http(addr, "DELETE", "/jobs/1", b"");
    assert_eq!(status, 200);
    assert_eq!(field(&body, "state"), "cancelled");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_tenants_share_the_pool_and_both_finish_identically() {
    let dir = temp_dir("fairness");
    let (_server, addr, handle) = start(&dir, 300);
    let db = quest_db(4);
    post(addr, "/dbs?name=q", &disc_core::encode_database(&db));

    post(addr, "/jobs?db=q&delta=5&tenant=alice", b"");
    post(addr, "/jobs?db=q&delta=6&tenant=bob&nocache=1", b"");
    assert_eq!(wait_terminal(addr, 1), "done");
    assert_eq!(wait_terminal(addr, 2), "done");

    // Both results are byte-identical to direct mining despite slicing.
    let (_, a) = get(addr, "/jobs/1/result");
    let (_, b) = get(addr, "/jobs/2/result");
    assert_eq!(a, expected(&db, 5));
    assert_eq!(b, expected(&db, 6));

    // Small slices on this database mean both jobs were preempted — the
    // pool was genuinely shared, not run-to-completion in turn.
    let (_, j1) = get(addr, "/jobs/1");
    let (_, j2) = get(addr, "/jobs/2");
    let p1: u32 = field(&j1, "preemptions").parse().unwrap();
    let p2: u32 = field(&j2, "preemptions").parse().unwrap();
    assert!(p1 > 0 && p2 > 0, "expected preemptions, got {p1} and {p2}");

    // Both tenants' spend is on the books.
    let (_, tenants) = get(addr, "/tenants");
    assert!(tenants.contains("\"tenant\":\"alice\""), "{tenants}");
    assert!(tenants.contains("\"tenant\":\"bob\""), "{tenants}");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_rejections() {
    let dir = temp_dir("malformed");
    let (_server, addr, handle) = start(&dir, 1_000_000);

    // Not HTTP at all.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // Unknown resource / wrong method.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(http(addr, "PUT", "/jobs", b"").0, 405);
    assert_eq!(get(addr, "/jobs/999").0, 404);
    assert_eq!(get(addr, "/jobs/not-a-number").0, 404);

    // Parameter validation: missing, unknown, unparseable.
    assert_eq!(post(addr, "/jobs", b"").0, 400);
    assert_eq!(post(addr, "/jobs?db=missing", b"").0, 404);
    assert_eq!(post(addr, "/dbs", b"junk").0, 400, "missing name");
    assert_eq!(post(addr, "/dbs?name=bad/name", b"1: (a)\n").0, 400);

    let (status, _) = post(addr, "/dbs?name=ok", b"1: (a)(b)\n2: (a)\n");
    assert_eq!(status, 201);
    assert_eq!(post(addr, "/dbs?name=ok", b"1: (a)\n").0, 409, "duplicate name");
    assert_eq!(post(addr, "/jobs?db=ok&algo=quantum", b"").0, 400);
    assert_eq!(post(addr, "/jobs?db=ok&mode=sideways", b"").0, 400);
    assert_eq!(post(addr, "/jobs?db=ok&delta=nope", b"").0, 400);
    assert_eq!(post(addr, "/jobs?db=ok&minsup=7", b"").0, 400, "minsup over 1");
    assert_eq!(post(addr, "/jobs?db=ok&minsup=0.5&delta=2", b"").0, 400, "both thresholds");

    // A body that is neither DSCDB1 nor UTF-8 cannot be interpreted at all:
    // a usage error (400). UTF-8 text that fails to parse as a database is
    // well-formed but invalid data: 422, the exit-1 analogue.
    assert_eq!(post(addr, "/dbs?name=garbage", &[0xFF, 0xFE, 0x00]).0, 400);
    assert_eq!(post(addr, "/dbs?name=garbage", b"1: (((\n").0, 422);

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_checkpoints_and_a_second_server_resumes_bit_identically() {
    let dir = temp_dir("drainresume");
    let db = quest_db(5);

    // First server: a quick job that finishes, and a slow-sliced job that
    // will still be mid-run at drain time.
    let (_s1, addr, handle) = start(&dir, 120);
    post(addr, "/dbs?name=q", &disc_core::encode_database(&db));
    let (_, quick) = post(addr, "/jobs?db=q&delta=30", b"");
    let quick_id: u64 = field(&quick, "id").parse().unwrap();
    assert_eq!(wait_terminal(addr, quick_id), "done");
    let (_, quick_bytes) = get(addr, &format!("/jobs/{quick_id}/result"));

    let (_, slow) = post(addr, "/jobs?db=q&delta=4", b"");
    let slow_id: u64 = field(&slow, "id").parse().unwrap();
    // Let it spend at least one slice so a checkpoint exists, then drain.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = get(addr, &format!("/jobs/{slow_id}"));
        if field(&body, "state") == "done" {
            panic!("slow job finished before drain; shrink slice_ops");
        }
        if field(&body, "progress") != "null" {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    let queued = drain(addr, handle);
    assert!(queued.contains(&slow_id), "drained job left queued: {queued:?}");

    // Second server over the same data dir: the finished job's result is
    // still served, the interrupted one resumes from its checkpoint.
    let (_s2, addr2, handle2) = start(&dir, 1_000_000);
    let (status, body) = get(addr2, &format!("/jobs/{quick_id}/result"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, quick_bytes, "pre-drain result must survive the restart");

    assert_eq!(wait_terminal(addr2, slow_id), "done");
    let (_, resumed) = get(addr2, &format!("/jobs/{slow_id}/result"));
    assert_eq!(resumed, expected(&db, 4), "resumed result differs from direct mining");

    // The reloaded results warmed the cache: a repeat of the pre-drain
    // query is served without mining.
    let (status, repeat) = post(addr2, "/jobs?db=q&delta=30", b"");
    assert_eq!(status, 200, "{repeat}");
    assert_eq!(field(&repeat, "cached"), "true");

    drain(addr2, handle2);
    let _ = std::fs::remove_dir_all(&dir);
}
