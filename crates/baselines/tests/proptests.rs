//! Property tests: every baseline returns exactly the brute-force frequent
//! set with exact supports on random databases, and all baselines agree with
//! each other on generated Quest workloads.

use disc_baselines::{Gsp, PrefixSpan, PseudoPrefixSpan, Spade, Spam};
use disc_core::{
    BruteForce, Item, Itemset, MinSupport, Sequence, SequenceDatabase, SequentialMiner,
};
use proptest::prelude::*;

fn arb_itemset(max_item: u32) -> impl Strategy<Value = Itemset> {
    prop::collection::btree_set(0..max_item, 1..=3)
        .prop_map(|s| Itemset::new(s.into_iter().map(Item)).expect("non-empty"))
}

fn arb_sequence(max_item: u32) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(arb_itemset(max_item), 1..=4).prop_map(Sequence::new)
}

fn arb_db(max_item: u32, max_rows: usize) -> impl Strategy<Value = SequenceDatabase> {
    prop::collection::vec(arb_sequence(max_item), 1..=max_rows)
        .prop_map(SequenceDatabase::from_sequences)
}

fn check_all(db: &SequenceDatabase, delta: u64) -> Result<(), TestCaseError> {
    let expected = BruteForce::default().mine(db, MinSupport::Count(delta));
    let miners: Vec<Box<dyn SequentialMiner>> = vec![
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
        Box::new(Gsp::default()),
        Box::new(Spade::default()),
        Box::new(Spam::default()),
    ];
    for miner in miners {
        let got = miner.mine(db, MinSupport::Count(delta));
        let diff = got.diff(&expected);
        prop_assert!(
            diff.is_empty(),
            "{} δ={}:\n{}\ndb:\n{}",
            miner.name(),
            delta,
            diff.join("\n"),
            db.to_text()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn baselines_match_brute_force(db in arb_db(5, 8), delta in 1u64..=4) {
        check_all(&db, delta)?;
    }

    #[test]
    fn baselines_match_on_wider_alphabet(db in arb_db(12, 10), delta in 2u64..=3) {
        check_all(&db, delta)?;
    }
}

#[test]
fn baselines_agree_on_quest_workload() {
    let db = disc_datagen::QuestConfig::paper_table11()
        .with_ncust(80)
        .with_nitems(60)
        .with_pools(60, 120)
        .with_seed(7)
        .generate();
    let reference = PseudoPrefixSpan::default().mine(&db, MinSupport::Fraction(0.08));
    assert!(!reference.is_empty(), "workload should have frequent patterns");
    for miner in disc_baselines::all_baselines() {
        let got = miner.mine(&db, MinSupport::Fraction(0.08));
        let diff = got.diff(&reference);
        assert!(diff.is_empty(), "{}:\n{}", miner.name(), diff.join("\n"));
    }
}
