//! **GSP** (Srikant & Agrawal, EDBT 1996) — the level-wise,
//! generate-and-test baseline (without the taxonomies / sliding-window /
//! time-constraint generalizations, which the DISC problem setting does not
//! use).
//!
//! Each pass k: candidates are produced by **joining** F₍k₋₁₎ with itself —
//! `s₁` joins `s₂` when dropping `s₁`'s first flattened element equals
//! dropping `s₂`'s last — then **pruned** by the anti-monotone property
//! (every (k-1)-subsequence obtained by dropping one element must be
//! frequent), and finally **counted** with a full containment scan of the
//! database. The paper's critique — repeated decomposition of customer
//! sequences for support counting — is exactly this scan.

use disc_core::constraints::{contains_with, contiguous_subsequences, TimeConstraints};
use disc_core::{
    contains, run_guarded, AbortReason, ExtElem, ExtMode, GuardedResult, Item, Itemset, MinSupport,
    MineGuard, MiningResult, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::{BTreeMap, BTreeSet};

/// The GSP miner. With [`TimeConstraints`] set it mines under the GSP
/// paper's generalized containment (sliding window, min/max gap); candidate
/// pruning then uses **contiguous** subsequences only, because `max_gap`
/// breaks plain anti-monotonicity (a data sequence can contain a pattern
/// while a non-contiguous subsequence violates the gap).
#[derive(Debug, Clone, Default)]
pub struct Gsp {
    /// Time constraints; default = plain containment.
    pub constraints: TimeConstraints,
}

impl Gsp {
    /// A GSP miner with time constraints.
    pub fn with_constraints(constraints: TimeConstraints) -> Gsp {
        Gsp { constraints }
    }
}

/// Drops the `i`-th flattened element (0-based), erasing its transaction if
/// it becomes empty.
fn drop_flat(seq: &Sequence, i: usize) -> Sequence {
    let mut flat_pos = 0usize;
    let mut out: Vec<Itemset> = Vec::with_capacity(seq.n_transactions());
    for set in seq.itemsets() {
        if flat_pos + set.len() <= i || flat_pos > i {
            out.push(set.clone());
        } else {
            let keep_idx = i - flat_pos;
            let items: Vec<Item> = set
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != keep_idx)
                .map(|(_, item)| item)
                .collect();
            if !items.is_empty() {
                out.push(Itemset::from_sorted(items));
            }
        }
        flat_pos += set.len();
    }
    Sequence::new(out)
}

/// Drops the first flattened element. GSP's join key for the left operand.
fn drop_first(seq: &Sequence) -> Sequence {
    drop_flat(seq, 0)
}

/// Drops the last flattened element. GSP's join key for the right operand.
fn drop_last(seq: &Sequence) -> Sequence {
    drop_flat(seq, seq.length() - 1)
}

/// Joins `s1` with `s2` (given `drop_first(s1) == drop_last(s2)`): appends
/// `s2`'s last element to `s1`, as a new transaction iff it formed its own
/// transaction in `s2`.
fn join(s1: &Sequence, s2: &Sequence) -> Option<Sequence> {
    let last_set = s2.last_itemset().expect("non-empty");
    let item = last_set.max_item();
    let mode = if last_set.len() == 1 { ExtMode::Sequence } else { ExtMode::Itemset };
    match mode {
        ExtMode::Sequence => Some(s1.extended(ExtElem { item, mode })),
        ExtMode::Itemset => {
            // The item must append past s1's last element for the flattened
            // form to stay canonical; otherwise this join pair contributes
            // nothing (the candidate arises from another pair).
            if item > s1.last_flat_item().expect("non-empty") {
                Some(s1.extended(ExtElem { item, mode }))
            } else {
                None
            }
        }
    }
}

impl SequentialMiner for Gsp {
    fn name(&self) -> &str {
        if self.constraints.is_none() {
            "GSP"
        } else {
            "GSP (constrained)"
        }
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        self.mine_inner(db, min_support, &guard, &mut result)
            .expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| self.mine_inner(db, min_support, guard, result))
    }
}

impl Gsp {
    /// The cooperative core: checkpoints per scanned sequence, per join
    /// pair, and per pruned candidate.
    fn mine_inner(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
        result: &mut MiningResult,
    ) -> Result<(), AbortReason> {
        let delta = min_support.resolve(db.len());

        // Pass 1.
        let mut counts: BTreeMap<Item, u64> = BTreeMap::new();
        for s in db.sequences() {
            guard.checkpoint()?;
            for item in s.distinct_items() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let f1: Vec<Item> = counts.iter().filter(|(_, &c)| c >= delta).map(|(&i, _)| i).collect();
        for &item in &f1 {
            guard.note_pattern()?;
            result.insert(Sequence::single(item), counts[&item]);
        }

        // Pass 2: the join of F1 with itself degenerates to all pairs.
        let mut candidates = Vec::new();
        for &x in &f1 {
            for &y in &f1 {
                guard.checkpoint()?;
                candidates.push(
                    Sequence::single(x).extended(ExtElem { item: y, mode: ExtMode::Sequence }),
                );
                if y > x {
                    candidates.push(
                        Sequence::single(x).extended(ExtElem { item: y, mode: ExtMode::Itemset }),
                    );
                }
            }
        }
        let mut frontier =
            count_and_filter(db, candidates, delta, &self.constraints, guard, result)?;

        // Passes k ≥ 3.
        while !frontier.is_empty() {
            let frequent: BTreeSet<&Sequence> = frontier.iter().collect();
            // Join.
            let mut by_tail: BTreeMap<Sequence, Vec<&Sequence>> = BTreeMap::new();
            for s in &frontier {
                guard.checkpoint()?;
                by_tail.entry(drop_first(s)).or_default().push(s);
            }
            let mut candidates: BTreeSet<Sequence> = BTreeSet::new();
            for s2 in &frontier {
                guard.checkpoint()?;
                let key = drop_last(s2);
                if let Some(lefts) = by_tail.get(&key) {
                    for s1 in lefts {
                        if let Some(cand) = join(s1, s2) {
                            candidates.insert(cand);
                        }
                    }
                }
            }
            // Prune. Unconstrained: every one-element-dropped subsequence
            // must be frequent. Constrained: only the contiguous
            // subsequences may be required frequent (GSP §3.2).
            let mut pruned: Vec<Sequence> = Vec::new();
            for cand in candidates {
                guard.checkpoint()?;
                let keep = if self.constraints.is_none() {
                    (0..cand.length()).all(|i| {
                        let sub = drop_flat(&cand, i);
                        frequent.contains(&sub)
                    })
                } else {
                    contiguous_subsequences(&cand).iter().all(|sub| frequent.contains(sub))
                };
                if keep {
                    pruned.push(cand);
                }
            }
            frontier = count_and_filter(db, pruned, delta, &self.constraints, guard, result)?;
        }
        Ok(())
    }
}

/// Counts candidates by scanning the database once with the GSP **hash
/// tree**: interior nodes hash on the next flattened item of a candidate,
/// leaves hold candidate lists. For each customer sequence the tree is
/// descended along every combination of increasing item positions, so a
/// leaf is only reached by sequences that share the hashed prefix items —
/// the candidates actually checked for containment are a small superset of
/// the contained ones.
fn count_and_filter(
    db: &SequenceDatabase,
    candidates: Vec<Sequence>,
    delta: u64,
    constraints: &TimeConstraints,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<Vec<Sequence>, AbortReason> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    let mut supports = vec![0u64; candidates.len()];
    if constraints.window.unwrap_or(0) > 0 {
        // A sliding window lets an element's items appear out of flattened
        // order in the data, so hash-tree reachability (which follows
        // increasing positions) is not a sound filter — scan directly.
        for s in db.sequences() {
            guard.charge(candidates.len() as u64)?;
            for (idx, cand) in candidates.iter().enumerate() {
                if contains_with(s, cand, constraints) {
                    supports[idx] += 1;
                }
            }
        }
    } else {
        let tree = HashTree::build(&candidates);
        // Stamps avoid re-checking a candidate reached through several paths
        // of the same customer sequence.
        let mut stamp = vec![0u32; candidates.len()];
        for (row, s) in db.sequences().enumerate() {
            guard.checkpoint()?;
            let flat: Vec<Item> = s.flat_iter().map(|(item, _)| item).collect();
            tree.for_each_reachable(&flat, &mut |cand_idx| {
                if stamp[cand_idx] != row as u32 + 1 {
                    stamp[cand_idx] = row as u32 + 1;
                    let hit = if constraints.is_none() {
                        contains(s, &candidates[cand_idx])
                    } else {
                        contains_with(s, &candidates[cand_idx], constraints)
                    };
                    if hit {
                        supports[cand_idx] += 1;
                    }
                }
            });
        }
    }
    let mut out = Vec::new();
    for (cand, support) in candidates.into_iter().zip(supports) {
        if support >= delta {
            guard.note_pattern()?;
            result.insert(cand.clone(), support);
            out.push(cand);
        }
    }
    Ok(out)
}

/// The GSP candidate hash tree.
struct HashTree {
    root: HtNode,
}

enum HtNode {
    Interior(Box<[HtNode; HASH_FANOUT]>),
    Leaf(Vec<usize>),
}

const HASH_FANOUT: usize = 8;
const LEAF_SPLIT: usize = 16;

fn bucket_of(item: Item) -> usize {
    (item.id() as usize).wrapping_mul(2654435761) % HASH_FANOUT
}

impl HashTree {
    fn build(candidates: &[Sequence]) -> HashTree {
        let k = candidates.first().map_or(0, Sequence::length);
        let flats: Vec<Vec<Item>> = candidates
            .iter()
            .map(|cand| {
                debug_assert_eq!(cand.length(), k, "one tree per candidate level");
                cand.flat_iter().map(|(item, _)| item).collect()
            })
            .collect();
        let all: Vec<usize> = (0..candidates.len()).collect();
        HashTree { root: build_node(&flats, all, 0, k) }
    }

    /// Invokes `f` with every candidate whose hashed item path is realizable
    /// as an increasing position sequence in `flat`.
    fn for_each_reachable(&self, flat: &[Item], f: &mut impl FnMut(usize)) {
        visit(&self.root, flat, 0, f);
    }
}

/// Recursively builds a node for the candidates in `members`: leaves stay
/// leaves until they overflow and hashed items remain; interiors partition
/// by the bucket of the `depth`-th flattened item.
fn build_node(flats: &[Vec<Item>], members: Vec<usize>, depth: usize, k: usize) -> HtNode {
    if members.len() <= LEAF_SPLIT || depth >= k {
        return HtNode::Leaf(members);
    }
    let mut buckets: Vec<Vec<usize>> = (0..HASH_FANOUT).map(|_| Vec::new()).collect();
    for idx in members {
        buckets[bucket_of(flats[idx][depth])].push(idx);
    }
    let children: Vec<HtNode> =
        buckets.into_iter().map(|b| build_node(flats, b, depth + 1, k)).collect();
    let array: Box<[HtNode; HASH_FANOUT]> =
        children.try_into().unwrap_or_else(|_| unreachable!("exactly HASH_FANOUT children"));
    HtNode::Interior(array)
}

fn visit(node: &HtNode, flat: &[Item], from: usize, f: &mut impl FnMut(usize)) {
    match node {
        HtNode::Leaf(list) => {
            for &idx in list {
                f(idx);
            }
        }
        HtNode::Interior(children) => {
            // Hash on every item at position >= from, recursing past it.
            for (p, &item) in flat.iter().enumerate().skip(from) {
                visit(&children[bucket_of(item)], flat, p + 1, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn seq(s: &str) -> Sequence {
        parse_sequence(s).unwrap()
    }

    #[test]
    fn drop_flat_elements() {
        let s = seq("(a,b)(c)(d,e)");
        assert_eq!(drop_flat(&s, 0), seq("(b)(c)(d,e)"));
        assert_eq!(drop_flat(&s, 1), seq("(a)(c)(d,e)"));
        assert_eq!(drop_flat(&s, 2), seq("(a,b)(d,e)"));
        assert_eq!(drop_flat(&s, 4), seq("(a,b)(c)(d)"));
        assert_eq!(drop_first(&s), seq("(b)(c)(d,e)"));
        assert_eq!(drop_last(&s), seq("(a,b)(c)(d)"));
    }

    #[test]
    fn join_respects_transaction_structure() {
        // <(a)(b)> ⋈ <(b)(c)> = <(a)(b)(c)>; <(a)(b)> ⋈ <(b,c)> = <(a)(b,c)>.
        assert_eq!(join(&seq("(a)(b)"), &seq("(b)(c)")), Some(seq("(a)(b)(c)")));
        assert_eq!(join(&seq("(a)(b)"), &seq("(b,c)")), Some(seq("(a)(b,c)")));
        // Itemset join below the last element is non-canonical.
        assert_eq!(join(&seq("(a)(c)"), &seq("(b,c)")), None);
    }

    #[test]
    fn hash_tree_reaches_every_contained_candidate() {
        // Reachability must be a superset of containment, whatever the
        // bucket layout.
        let candidates: Vec<Sequence> = [
            "(a)(b)(c)",
            "(a)(b,c)",
            "(a,b)(c)",
            "(b)(c)(a)",
            "(c)(b)(a)",
            "(a)(a)(a)",
            "(b,f)(g)",
            "(e)(b)(f)",
            "(g)(h)(f)",
            "(a,e)(b)",
            "(f)(f)(f)",
            "(h)(c)(b)",
            "(a)(c)(f)",
            "(b)(h)(c)",
            "(e)(f)(c)",
            "(g)(b)(b)",
            "(a,g)(b)",
            "(b)(b,f)",
        ]
        .iter()
        .map(|t| seq(t))
        .collect();
        let tree = HashTree::build(&candidates);
        let hay = seq("(a,e,g)(b)(h)(f)(c)(b,f)");
        let flat: Vec<Item> = hay.flat_iter().map(|(i, _)| i).collect();
        let mut reached = vec![false; candidates.len()];
        tree.for_each_reachable(&flat, &mut |idx| reached[idx] = true);
        for (idx, cand) in candidates.iter().enumerate() {
            if contains(&hay, cand) {
                assert!(reached[idx], "contained candidate {cand} not reached");
            }
        }
    }

    #[test]
    fn hash_tree_splits_large_candidate_sets() {
        // > LEAF_SPLIT candidates with distinct leading items must produce
        // an interior root (i.e. real pruning, not one big leaf).
        let candidates: Vec<Sequence> = (0..40u32)
            .map(|i| {
                Sequence::new([
                    disc_core::Itemset::single(Item(i)),
                    disc_core::Itemset::single(Item(i + 1)),
                    disc_core::Itemset::single(Item(i + 2)),
                ])
            })
            .collect();
        let tree = HashTree::build(&candidates);
        assert!(matches!(tree.root, HtNode::Interior(_)));
        // A sequence with items far outside every candidate reaches nothing.
        let hay = seq("(900)(901)(902)");
        let flat: Vec<Item> = hay.flat_iter().map(|(i, _)| i).collect();
        let mut reached = 0usize;
        tree.for_each_reachable(&flat, &mut |_| reached += 1);
        // Hash collisions may admit a few, but most of the 40 are pruned.
        assert!(reached < 40, "no pruning happened");
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        let db = SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap();
        for delta in 1..=4 {
            let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
            let got = Gsp::default().mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn empty_database() {
        let r = Gsp::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(r.is_empty());
    }

    #[test]
    fn constrained_gsp_matches_definitional_counting() {
        // Gap constraints only restrict containment, so the constrained
        // frequent set is a subset of the unconstrained one with supports
        // recomputed under `contains_with` — checked definitionally.
        use disc_core::constraints::support_count_with;
        use disc_core::BruteForce;
        let db = SequenceDatabase::from_parsed(&[
            "(a)(b)(x)(c)",
            "(a)(x)(b)(c)",
            "(a)(b)(c)",
            "(a)(x)(x)(b)(x)(c)",
        ])
        .unwrap();
        for constraints in [
            TimeConstraints { max_gap: Some(2), ..Default::default() },
            TimeConstraints { min_gap: Some(1), ..Default::default() },
            TimeConstraints { min_gap: Some(1), max_gap: Some(3), ..Default::default() },
        ] {
            let delta = 2u64;
            let got = Gsp::with_constraints(constraints).mine(&db, MinSupport::Count(delta));
            // Expected: every unconstrained frequent-at-1 pattern whose
            // constrained support reaches δ.
            let universe = BruteForce::default().mine(&db, MinSupport::Count(1));
            for (p, _) in universe.iter() {
                let sup = support_count_with(&db, p, &constraints);
                assert_eq!(
                    got.support_of(p),
                    if sup >= delta { Some(sup) } else { None },
                    "{p} under {constraints:?}"
                );
            }
            // And nothing extra.
            for (p, s) in got.iter() {
                assert_eq!(s, support_count_with(&db, p, &constraints), "{p}");
            }
        }
    }

    #[test]
    fn windowed_gsp_assembles_elements() {
        // (a,b) never co-occurs in one transaction, but always within a
        // 1-transaction window.
        let db = SequenceDatabase::from_parsed(&["(a)(b)(c)", "(b)(a)(c)", "(a)(b)"]).unwrap();
        let plain = Gsp::default().mine(&db, MinSupport::Count(3));
        assert!(!plain.contains_pattern(&seq("(a,b)")));
        let c = TimeConstraints { window: Some(1), ..Default::default() };
        let windowed = Gsp::with_constraints(c).mine(&db, MinSupport::Count(3));
        assert_eq!(windowed.support_of(&seq("(a,b)")), Some(3));
        // The out-of-flattened-order row (b)(a) must count — the direct-scan
        // path, not hash-tree reachability.
        assert_eq!(disc_core::constraints::support_count_with(&db, &seq("(a,b)"), &c), 3);
    }

    #[test]
    fn max_gap_can_break_plain_antimonotonicity() {
        // <(a)(b)(c)> with max_gap 1 is contained in (a)(b)(c) rows, but its
        // subsequence <(a)(c)> is NOT (gap 2) — the reason constrained GSP
        // must prune with contiguous subsequences only.
        let db = SequenceDatabase::from_parsed(&["(a)(b)(c)", "(a)(b)(c)"]).unwrap();
        let c = TimeConstraints { max_gap: Some(1), ..Default::default() };
        let got = Gsp::with_constraints(c).mine(&db, MinSupport::Count(2));
        assert_eq!(got.support_of(&seq("(a)(b)(c)")), Some(2));
        assert!(!got.contains_pattern(&seq("(a)(c)")));
    }
}
