//! **Pseudo-projection PrefixSpan** ("Pseudo" in the paper's figures):
//! identical pattern growth to [`crate::PrefixSpan`], but a projected
//! database is a list of *pivots* `(customer, transaction, item)` into the
//! original sequences instead of materialized postfixes — the variant the
//! PrefixSpan paper recommends when the database fits in memory, and the
//! stronger baseline in the DISC paper's Figures 8–10.

use disc_core::{
    run_guarded, AbortReason, ExtElem, ExtMode, GuardedResult, Item, Itemset, MinSupport,
    MineGuard, MiningResult, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// A pseudo-projected postfix: everything after item `item_idx` of
/// transaction `txn` of customer `seq`.
#[derive(Debug, Clone, Copy)]
struct Pivot {
    seq: usize,
    txn: usize,
    item_idx: usize,
}

impl Pivot {
    fn partial<'a>(&self, db: &'a SequenceDatabase) -> &'a [Item] {
        &db.sequence(self.seq).itemset(self.txn).as_slice()[self.item_idx + 1..]
    }

    fn rest<'a>(&self, db: &'a SequenceDatabase) -> &'a [Itemset] {
        &db.sequence(self.seq).itemsets()[self.txn + 1..]
    }
}

/// The pseudo-projection PrefixSpan miner.
#[derive(Debug, Clone, Default)]
pub struct PseudoPrefixSpan {
    _private: (),
}

impl SequentialMiner for PseudoPrefixSpan {
    fn name(&self) -> &str {
        "Pseudo"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        mine_inner(db, min_support, &guard, &mut result).expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| mine_inner(db, min_support, guard, result))
    }
}

/// The cooperative core: one checkpoint per scanned pivot, one charge per
/// projection pass, one pattern note per frequent pattern.
fn mine_inner(
    db: &SequenceDatabase,
    min_support: MinSupport,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    let delta = min_support.resolve(db.len());

    let mut counts: BTreeMap<Item, u64> = BTreeMap::new();
    for s in db.sequences() {
        guard.checkpoint()?;
        for item in s.distinct_items() {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    for (&item, &support) in counts.iter() {
        if support < delta {
            continue;
        }
        guard.note_pattern()?;
        result.insert(Sequence::single(item), support);
        guard.charge(db.len() as u64)?;
        let pivots: Vec<Pivot> = (0..db.len())
            .filter_map(|seq| {
                first_txn_with_item(db.sequence(seq).itemsets(), 0, item)
                    .map(|(txn, item_idx)| Pivot { seq, txn, item_idx })
            })
            .collect();
        mine_pivots(db, &Sequence::single(item), &pivots, delta, guard, result)?;
    }
    Ok(())
}

/// Leftmost `(txn, item index)` of `x` in `itemsets[from..]` (txn index is
/// absolute).
fn first_txn_with_item(itemsets: &[Itemset], from: usize, x: Item) -> Option<(usize, usize)> {
    itemsets
        .iter()
        .enumerate()
        .skip(from)
        .find_map(|(t, set)| set.as_slice().binary_search(&x).ok().map(|i| (t, i)))
}

/// Leftmost `(txn, item index of x)` in `itemsets[from..]` whose transaction
/// contains both `x` and all of `last`.
fn first_superset_with_item(
    itemsets: &[Itemset],
    from: usize,
    last: &Itemset,
    x: Item,
) -> Option<(usize, usize)> {
    itemsets.iter().enumerate().skip(from).find_map(|(t, set)| {
        if last.is_subset_of(set) {
            set.as_slice().binary_search(&x).ok().map(|i| (t, i))
        } else {
            None
        }
    })
}

fn mine_pivots(
    db: &SequenceDatabase,
    prefix: &Sequence,
    pivots: &[Pivot],
    delta: u64,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    if (pivots.len() as u64) < delta {
        return Ok(());
    }
    let last = prefix.last_itemset().expect("prefixes are non-empty");
    let max_last = last.max_item();

    let mut s_counts: BTreeMap<Item, u64> = BTreeMap::new();
    let mut i_counts: BTreeMap<Item, u64> = BTreeMap::new();
    let mut s_seen: Vec<Item> = Vec::new();
    let mut i_seen: Vec<Item> = Vec::new();
    for pivot in pivots {
        guard.checkpoint()?;
        s_seen.clear();
        i_seen.clear();
        i_seen.extend_from_slice(pivot.partial(db));
        for set in pivot.rest(db) {
            s_seen.extend(set.iter());
            if last.is_subset_of(set) {
                let from = set.as_slice().partition_point(|&i| i <= max_last);
                i_seen.extend_from_slice(&set.as_slice()[from..]);
            }
        }
        s_seen.sort_unstable();
        s_seen.dedup();
        i_seen.sort_unstable();
        i_seen.dedup();
        for &x in &s_seen {
            *s_counts.entry(x).or_insert(0) += 1;
        }
        for &x in &i_seen {
            *i_counts.entry(x).or_insert(0) += 1;
        }
    }

    for (&x, &support) in &i_counts {
        if support < delta {
            continue;
        }
        let child = prefix.extended(ExtElem { item: x, mode: ExtMode::Itemset });
        guard.note_pattern()?;
        result.insert(child.clone(), support);
        guard.charge(pivots.len() as u64)?;
        let child_pivots: Vec<Pivot> = pivots
            .iter()
            .filter_map(|p| {
                // Within the matched transaction's remainder first…
                if let Ok(rel) = p.partial(db).binary_search(&x) {
                    return Some(Pivot { seq: p.seq, txn: p.txn, item_idx: p.item_idx + 1 + rel });
                }
                // …otherwise the leftmost later superset of last ∪ {x}.
                let itemsets = db.sequence(p.seq).itemsets();
                first_superset_with_item(itemsets, p.txn + 1, last, x)
                    .map(|(txn, item_idx)| Pivot { seq: p.seq, txn, item_idx })
            })
            .collect();
        debug_assert_eq!(child_pivots.len() as u64, support);
        mine_pivots(db, &child, &child_pivots, delta, guard, result)?;
    }

    for (&x, &support) in &s_counts {
        if support < delta {
            continue;
        }
        let child = prefix.extended(ExtElem { item: x, mode: ExtMode::Sequence });
        guard.note_pattern()?;
        result.insert(child.clone(), support);
        guard.charge(pivots.len() as u64)?;
        let child_pivots: Vec<Pivot> = pivots
            .iter()
            .filter_map(|p| {
                let itemsets = db.sequence(p.seq).itemsets();
                first_txn_with_item(itemsets, p.txn + 1, x).map(|(txn, item_idx)| Pivot {
                    seq: p.seq,
                    txn,
                    item_idx,
                })
            })
            .collect();
        debug_assert_eq!(child_pivots.len() as u64, support);
        mine_pivots(db, &child, &child_pivots, delta, guard, result)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        let db = table1();
        for delta in 1..=4 {
            let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
            let got = PseudoPrefixSpan::default().mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn agrees_with_physical_projection() {
        let db = table1();
        for delta in 1..=3 {
            let physical = crate::PrefixSpan::default().mine(&db, MinSupport::Count(delta));
            let pseudo = PseudoPrefixSpan::default().mine(&db, MinSupport::Count(delta));
            assert!(physical.diff(&pseudo).is_empty());
        }
    }

    #[test]
    fn deep_single_path() {
        let db =
            SequenceDatabase::from_parsed(&["(a)(b)(c)(d)(e)(f)", "(a)(b)(c)(d)(e)(f)"]).unwrap();
        let r = PseudoPrefixSpan::default().mine(&db, MinSupport::Count(2));
        assert_eq!(r.support_of(&parse_sequence("(a)(b)(c)(d)(e)(f)").unwrap()), Some(2));
        assert_eq!(r.len(), 63);
    }

    #[test]
    fn pivot_views() {
        let db = SequenceDatabase::from_parsed(&["(a,b,c)(d)"]).unwrap();
        let p = Pivot { seq: 0, txn: 0, item_idx: 0 };
        let partial: Vec<char> = p.partial(&db).iter().map(|i| i.as_letter().unwrap()).collect();
        assert_eq!(partial, vec!['b', 'c']);
        assert_eq!(p.rest(&db).len(), 1);
    }
}
