//! **PrefixSpan** (Pei et al., ICDE 2001) with physical projection.
//!
//! Patterns are grown depth-first. For a prefix `P` the *projected database*
//! holds, per supporting customer, the **postfix**: the part of the sequence
//! after the leftmost embedding of `P`, split into
//!
//! * a `partial` first itemset — the items of the matched transaction larger
//!   than the matched item (the `(_, e, g)` notation of Table 2) — usable
//!   only for itemset extensions, and
//! * the `rest` — the full transactions after it.
//!
//! One scan of the projected database counts, per customer:
//!
//! * sequence extensions: every item occurring in `rest`;
//! * itemset extensions: items in `partial`, plus items `x > max(L)` in any
//!   `rest` transaction containing the prefix's last itemset `L` (this
//!   superset scan is what makes leftmost projection lossless: a later
//!   transaction may host `L ∪ {x}` even when the matched one does not).
//!
//! Each frequent extension is reported and recursively projected.

use disc_core::{
    run_guarded, AbortReason, GuardedResult, Item, Itemset, MinSupport, MineGuard, MiningResult,
    Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// One customer's postfix in a (physically) projected database.
#[derive(Debug, Clone)]
struct Postfix {
    /// Items of the matched transaction after the matched item.
    partial: Vec<Item>,
    /// Transactions strictly after the matched one.
    rest: Vec<Itemset>,
}

/// The PrefixSpan miner (physical projection).
#[derive(Debug, Clone, Default)]
pub struct PrefixSpan {
    _private: (),
}

impl SequentialMiner for PrefixSpan {
    fn name(&self) -> &str {
        "PrefixSpan"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        mine_inner(db, min_support, &guard, &mut result).expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| mine_inner(db, min_support, guard, result))
    }
}

/// The cooperative core: one checkpoint per scanned postfix, one charge per
/// projection pass, one pattern note per frequent pattern.
fn mine_inner(
    db: &SequenceDatabase,
    min_support: MinSupport,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    let delta = min_support.resolve(db.len());

    // Frequent 1-sequences and their projected databases.
    let mut counts: BTreeMap<Item, u64> = BTreeMap::new();
    for s in db.sequences() {
        guard.checkpoint()?;
        for item in s.distinct_items() {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    for (&item, &support) in counts.iter() {
        if support < delta {
            continue;
        }
        guard.note_pattern()?;
        result.insert(Sequence::single(item), support);
        guard.charge(db.len() as u64)?;
        let projected: Vec<Postfix> =
            db.sequences().filter_map(|s| project_seq_ext(s.itemsets(), &[], item)).collect();
        let prefix = Sequence::single(item);
        mine_projected(&prefix, &projected, delta, guard, result)?;
    }
    Ok(())
}

/// Projects a postfix (partial + rest) by a sequence extension `x`: the
/// leftmost `rest` transaction containing `x`.
fn project_seq_ext(rest: &[Itemset], _partial: &[Item], x: Item) -> Option<Postfix> {
    let (t, set) = rest.iter().enumerate().find(|(_, set)| set.contains(x))?;
    let idx = set.as_slice().binary_search(&x).expect("contains checked");
    Some(Postfix { partial: set.as_slice()[idx + 1..].to_vec(), rest: rest[t + 1..].to_vec() })
}

/// Projects a postfix by an itemset extension `x` of the prefix's last
/// itemset `last`: either from the partial, or from the leftmost `rest`
/// transaction containing `last ∪ {x}`.
fn project_itemset_ext(postfix: &Postfix, last: &Itemset, x: Item) -> Option<Postfix> {
    if let Ok(idx) = postfix.partial.binary_search(&x) {
        return Some(Postfix {
            partial: postfix.partial[idx + 1..].to_vec(),
            rest: postfix.rest.clone(),
        });
    }
    let (t, set) = postfix
        .rest
        .iter()
        .enumerate()
        .find(|(_, set)| set.contains(x) && last.is_subset_of(set))?;
    let idx = set.as_slice().binary_search(&x).expect("contains checked");
    Some(Postfix {
        partial: set.as_slice()[idx + 1..].to_vec(),
        rest: postfix.rest[t + 1..].to_vec(),
    })
}

fn mine_projected(
    prefix: &Sequence,
    projected: &[Postfix],
    delta: u64,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    if (projected.len() as u64) < delta {
        return Ok(());
    }
    let last = prefix.last_itemset().expect("prefixes are non-empty");
    let max_last = last.max_item();

    // One scan: count both extension forms per customer.
    let mut s_counts: BTreeMap<Item, u64> = BTreeMap::new();
    let mut i_counts: BTreeMap<Item, u64> = BTreeMap::new();
    let mut s_seen: Vec<Item> = Vec::new();
    let mut i_seen: Vec<Item> = Vec::new();
    for postfix in projected {
        guard.checkpoint()?;
        s_seen.clear();
        i_seen.clear();
        for &x in &postfix.partial {
            i_seen.push(x);
        }
        for set in &postfix.rest {
            for x in set.iter() {
                s_seen.push(x);
            }
            if last.is_subset_of(set) {
                let from = set.as_slice().partition_point(|&i| i <= max_last);
                for &x in &set.as_slice()[from..] {
                    i_seen.push(x);
                }
            }
        }
        s_seen.sort_unstable();
        s_seen.dedup();
        i_seen.sort_unstable();
        i_seen.dedup();
        for &x in &s_seen {
            *s_counts.entry(x).or_insert(0) += 1;
        }
        for &x in &i_seen {
            *i_counts.entry(x).or_insert(0) += 1;
        }
    }

    // Recurse on itemset extensions.
    for (&x, &support) in &i_counts {
        if support < delta {
            continue;
        }
        let child =
            prefix.extended(disc_core::ExtElem { item: x, mode: disc_core::ExtMode::Itemset });
        guard.note_pattern()?;
        result.insert(child.clone(), support);
        guard.charge(projected.len() as u64)?;
        let child_projected: Vec<Postfix> =
            projected.iter().filter_map(|p| project_itemset_ext(p, last, x)).collect();
        debug_assert_eq!(child_projected.len() as u64, support);
        mine_projected(&child, &child_projected, delta, guard, result)?;
    }

    // Recurse on sequence extensions.
    for (&x, &support) in &s_counts {
        if support < delta {
            continue;
        }
        let child =
            prefix.extended(disc_core::ExtElem { item: x, mode: disc_core::ExtMode::Sequence });
        guard.note_pattern()?;
        result.insert(child.clone(), support);
        guard.charge(projected.len() as u64)?;
        let child_projected: Vec<Postfix> =
            projected.iter().filter_map(|p| project_seq_ext(&p.rest, &p.partial, x)).collect();
        debug_assert_eq!(child_projected.len() as u64, support);
        mine_projected(&child, &child_projected, delta, guard, result)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn section_1_1_frequent_one_sequences() {
        // δ = 2: <(a)>, <(b)>, <(e)>, <(f)>, <(g)>, <(h)>.
        let r = PrefixSpan::default().mine(&table1(), MinSupport::Count(2));
        let ones: Vec<String> = r.of_length(1).iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(ones, vec!["(a)", "(b)", "(e)", "(f)", "(g)", "(h)"]);
    }

    #[test]
    fn table_2_projection_of_a() {
        // The projected database of <(a)> holds CIDs 1 and 4.
        let db = table1();
        let postfixes: Vec<Postfix> = db
            .sequences()
            .filter_map(|s| project_seq_ext(s.itemsets(), &[], Item::from_letter('a').unwrap()))
            .collect();
        assert_eq!(postfixes.len(), 2);
        // CID 1: (_, e, g)(b)(h)(f)(c)(b, f).
        let p1 = &postfixes[0];
        let partial: String = p1.partial.iter().map(|i| i.as_letter().unwrap()).collect();
        assert_eq!(partial, "eg");
        assert_eq!(p1.rest.len(), 5);
        // CID 4: (_, g)(b, f, h)(b, f).
        let p4 = &postfixes[1];
        let partial: String = p4.partial.iter().map(|i| i.as_letter().unwrap()).collect();
        assert_eq!(partial, "g");
        assert_eq!(p4.rest.len(), 2);
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        let db = table1();
        for delta in 1..=4 {
            let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
            let got = PrefixSpan::default().mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn itemset_extension_through_later_superset() {
        // <(a)(b,f)> is only realizable through the final (b,f) transaction.
        let db = SequenceDatabase::from_parsed(&["(a)(b)(c)(b,f)", "(a)(b,f)"]).unwrap();
        let r = PrefixSpan::default().mine(&db, MinSupport::Count(2));
        assert_eq!(r.support_of(&parse_sequence("(a)(b,f)").unwrap()), Some(2));
    }

    #[test]
    fn empty_database() {
        let r = PrefixSpan::default().mine(&SequenceDatabase::new(), MinSupport::Count(1));
        assert!(r.is_empty());
    }
}
