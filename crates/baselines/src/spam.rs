//! **SPAM** (Ayres et al., KDD 2002) — depth-first search over vertical
//! bitmaps.
//!
//! Every customer gets a block of bits, one per transaction. An item's
//! bitmap marks the transactions containing it; a pattern's bitmap marks the
//! transactions where an embedding of the pattern can *end*. Growth uses two
//! transforms:
//!
//! * **S-step**: set every bit strictly after the first set bit of each
//!   customer block, then AND with the item's bitmap — the pattern followed
//!   by the item in a later transaction;
//! * **I-step**: AND directly — the item joins the pattern's last
//!   transaction (canonical growth requires the item to exceed the last
//!   pattern item).
//!
//! SPAM's candidate pruning passes the items that survived at a node down to
//! its children (`S_temp` / `I_temp` in the paper). The whole database must
//! fit in memory as bitmaps — the assumption the DISC paper calls out.

use disc_core::{
    run_guarded, AbortReason, ExtElem, ExtMode, GuardedResult, Item, MinSupport, MineGuard,
    MiningResult, Sequence, SequenceDatabase, SequentialMiner,
};

/// Bit layout: each customer owns a contiguous range of bit positions, one
/// per transaction, padded into `u64` words *per customer* so per-customer
/// operations stay word-aligned.
#[derive(Debug, Clone)]
struct Layout {
    /// Word offset of each customer's block.
    word_offset: Vec<usize>,
    /// Number of transactions of each customer.
    n_txns: Vec<usize>,
    /// Total words.
    total_words: usize,
}

impl Layout {
    fn new(db: &SequenceDatabase) -> Layout {
        let mut word_offset = Vec::with_capacity(db.len());
        let mut n_txns = Vec::with_capacity(db.len());
        let mut words = 0usize;
        for s in db.sequences() {
            word_offset.push(words);
            let t = s.n_transactions();
            n_txns.push(t);
            words += t.div_ceil(64);
        }
        Layout { word_offset, n_txns, total_words: words }
    }

    fn customers(&self) -> usize {
        self.word_offset.len()
    }

    fn words_of(&self, customer: usize) -> std::ops::Range<usize> {
        let start = self.word_offset[customer];
        start..start + self.n_txns[customer].div_ceil(64)
    }
}

/// A vertical bitmap over the layout.
#[derive(Debug, Clone)]
struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    fn zeroed(layout: &Layout) -> Bitmap {
        Bitmap { words: vec![0; layout.total_words] }
    }

    fn set(&mut self, layout: &Layout, customer: usize, txn: usize) {
        let w = layout.word_offset[customer] + txn / 64;
        self.words[w] |= 1u64 << (txn % 64);
    }

    fn and(&self, other: &Bitmap) -> Bitmap {
        Bitmap { words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect() }
    }

    /// The S-step transform: per customer, every bit strictly after the
    /// first set bit.
    fn s_transform(&self, layout: &Layout) -> Bitmap {
        let mut out = Bitmap { words: vec![0; self.words.len()] };
        for c in 0..layout.customers() {
            let range = layout.words_of(c);
            let mut found = false;
            for w in range {
                if found {
                    out.words[w] = u64::MAX;
                } else if self.words[w] != 0 {
                    let first = self.words[w].trailing_zeros();
                    // Bits strictly above `first` within this word.
                    out.words[w] = if first == 63 { 0 } else { u64::MAX << (first + 1) };
                    found = true;
                }
            }
        }
        out
    }

    /// Number of customers with at least one set bit.
    fn support(&self, layout: &Layout) -> u64 {
        (0..layout.customers()).filter(|&c| layout.words_of(c).any(|w| self.words[w] != 0)).count()
            as u64
    }
}

/// The SPAM miner.
#[derive(Debug, Clone, Default)]
pub struct Spam {
    _private: (),
}

impl SequentialMiner for Spam {
    fn name(&self) -> &str {
        "SPAM"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        mine_inner(db, min_support, &guard, &mut result).expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| mine_inner(db, min_support, guard, result))
    }
}

/// The cooperative core: one checkpoint per customer in the bitmap build and
/// per candidate in the DFS, one pattern note per frequent pattern.
fn mine_inner(
    db: &SequenceDatabase,
    min_support: MinSupport,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    let delta = min_support.resolve(db.len());
    let Some(max_item) = db.max_item() else {
        return Ok(());
    };
    let n_items = max_item.id() as usize + 1;
    let layout = Layout::new(db);

    // Item bitmaps.
    let mut item_bitmaps: Vec<Bitmap> = vec![Bitmap::zeroed(&layout); n_items];
    for (c, s) in db.sequences().enumerate() {
        guard.checkpoint()?;
        for (t, set) in s.itemsets().iter().enumerate() {
            for item in set.iter() {
                item_bitmaps[item.id() as usize].set(&layout, c, t);
            }
        }
    }

    // Frequent items seed the DFS.
    let frequent: Vec<Item> = (0..n_items as u32)
        .map(Item)
        .filter(|i| item_bitmaps[i.id() as usize].support(&layout) >= delta)
        .collect();
    for &f in &frequent {
        let bitmap = item_bitmaps[f.id() as usize].clone();
        guard.note_pattern()?;
        result.insert(Sequence::single(f), bitmap.support(&layout));
        let i_candidates: Vec<Item> = frequent.iter().copied().filter(|&x| x > f).collect();
        dfs(
            &Sequence::single(f),
            &bitmap,
            &frequent,
            &i_candidates,
            &layout,
            &item_bitmaps,
            delta,
            guard,
            result,
        )?;
    }
    Ok(())
}

/// The DFS of SPAM Figure 4 ("DFS-Pruning"): try every S-/I-candidate; the
/// survivors become the candidate sets of the children.
#[allow(clippy::too_many_arguments)]
fn dfs(
    pattern: &Sequence,
    bitmap: &Bitmap,
    s_candidates: &[Item],
    i_candidates: &[Item],
    layout: &Layout,
    item_bitmaps: &[Bitmap],
    delta: u64,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    // S-step.
    let transformed = bitmap.s_transform(layout);
    let mut s_temp: Vec<(Item, Bitmap, u64)> = Vec::new();
    for &x in s_candidates {
        guard.checkpoint()?;
        let child = transformed.and(&item_bitmaps[x.id() as usize]);
        let support = child.support(layout);
        if support >= delta {
            s_temp.push((x, child, support));
        }
    }
    let s_survivors: Vec<Item> = s_temp.iter().map(|(x, _, _)| *x).collect();
    for (x, child_bitmap, support) in &s_temp {
        let child = pattern.extended(ExtElem { item: *x, mode: ExtMode::Sequence });
        guard.note_pattern()?;
        result.insert(child.clone(), *support);
        let child_i: Vec<Item> = s_survivors.iter().copied().filter(|&y| y > *x).collect();
        dfs(
            &child,
            child_bitmap,
            &s_survivors,
            &child_i,
            layout,
            item_bitmaps,
            delta,
            guard,
            result,
        )?;
    }

    // I-step.
    let mut i_temp: Vec<(Item, Bitmap, u64)> = Vec::new();
    for &x in i_candidates {
        guard.checkpoint()?;
        let child = bitmap.and(&item_bitmaps[x.id() as usize]);
        let support = child.support(layout);
        if support >= delta {
            i_temp.push((x, child, support));
        }
    }
    let i_survivors: Vec<Item> = i_temp.iter().map(|(x, _, _)| *x).collect();
    for (x, child_bitmap, support) in &i_temp {
        let child = pattern.extended(ExtElem { item: *x, mode: ExtMode::Itemset });
        guard.note_pattern()?;
        result.insert(child.clone(), *support);
        let child_i: Vec<Item> = i_survivors.iter().copied().filter(|&y| y > *x).collect();
        dfs(
            &child,
            child_bitmap,
            &s_survivors,
            &child_i,
            layout,
            item_bitmaps,
            delta,
            guard,
            result,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    #[test]
    fn s_transform_sets_bits_after_first() {
        let db = table1();
        let layout = Layout::new(&db);
        let mut b = Bitmap::zeroed(&layout);
        b.set(&layout, 0, 1);
        b.set(&layout, 0, 3);
        b.set(&layout, 3, 0);
        let t = b.s_transform(&layout);
        // Customer 0 has 6 transactions: bits 2..=5 are reachable.
        let word0 = t.words[layout.word_offset[0]];
        assert_eq!(word0 & ((1 << 6) - 1), 0b111100);
        // Customer 3 (4 transactions): bits 1..=3 (and beyond, masked by ANDs).
        let word3 = t.words[layout.word_offset[3]];
        assert_eq!(word3 & ((1 << 4) - 1), 0b1110);
        // Customers 1, 2 untouched.
        assert_eq!(t.words[layout.word_offset[1]], 0);
    }

    #[test]
    fn support_counts_customers_not_bits() {
        let db = table1();
        let layout = Layout::new(&db);
        let mut b = Bitmap::zeroed(&layout);
        b.set(&layout, 0, 0);
        b.set(&layout, 0, 5);
        b.set(&layout, 2, 0);
        assert_eq!(b.support(&layout), 2);
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        let db = table1();
        for delta in 1..=4 {
            let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
            let got = Spam::default().mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn long_customer_blocks_cross_word_boundaries() {
        // A customer with > 64 transactions exercises multi-word blocks.
        let long: Vec<String> =
            (0..70).map(|i| format!("({})", if i % 2 == 0 { "a" } else { "b" })).collect();
        let text = long.join("");
        let db = SequenceDatabase::from_parsed(&[&text, "(a)(b)"]).unwrap();
        let r = Spam::default().mine(&db, MinSupport::Count(2));
        assert_eq!(r.support_of(&parse_sequence("(a)(b)").unwrap()), Some(2));
        let expected = BruteForce::default().mine(&db, MinSupport::Count(2));
        assert!(r.diff(&expected).is_empty());
    }
}
