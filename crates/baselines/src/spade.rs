//! **SPADE** (Zaki, Machine Learning 2001) — vertical ID-lists with
//! temporal/equality joins, enumerated depth-first by equivalence class.
//!
//! The ID-list of a pattern holds `(sid, eid)` pairs: customer and the
//! transaction index hosting the pattern's **last** itemset, one pair per
//! distinct ending (the paper's §1.1 example: the ID-list of `<(a,g)(b)>`
//! over Table 1 is `{(1,2), (1,6), (4,3), (4,4)}` in 1-based coordinates).
//! Support is the number of distinct sids.
//!
//! A class groups the frequent patterns sharing a (k-1)-prefix. Two class
//! atoms `X = P⊕x`, `Y = P⊕y` join into candidates:
//!
//! * event × event, `y > x` → event atom `P.last ∪ {x,y}` (equality join);
//! * event × sequence → `X` followed by `(y)` (temporal join);
//! * sequence × sequence → `X (y)` (temporal), plus the event atom
//!   `P (x,y)` when `y > x` (equality);
//! * sequence × event → nothing (covered by the symmetric cases).

use disc_core::{
    run_guarded, AbortReason, ExtElem, ExtMode, GuardedResult, Item, MinSupport, MineGuard,
    MiningResult, Sequence, SequenceDatabase, SequentialMiner,
};
use std::collections::BTreeMap;

/// A vertical ID-list: `(sid, eid)` pairs sorted lexicographically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdList(Vec<(u32, u32)>);

impl IdList {
    /// Number of distinct sids — the support.
    pub fn support(&self) -> u64 {
        let mut n = 0u64;
        let mut last: Option<u32> = None;
        for &(sid, _) in &self.0 {
            if last != Some(sid) {
                n += 1;
                last = Some(sid);
            }
        }
        n
    }

    /// The raw pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.0
    }

    /// Temporal join: endings of `other` strictly after *some* ending of
    /// `self` within the same sid. Because only existence matters, the
    /// earliest `self` ending per sid suffices.
    pub fn temporal_join(&self, other: &IdList) -> IdList {
        let mut min_eid: BTreeMap<u32, u32> = BTreeMap::new();
        for &(sid, eid) in &self.0 {
            min_eid.entry(sid).or_insert(eid);
        }
        let out = other
            .0
            .iter()
            .filter(|(sid, eid)| min_eid.get(sid).is_some_and(|&m| *eid > m))
            .copied()
            .collect();
        IdList(out)
    }

    /// Equality join: endings shared by both lists.
    pub fn equality_join(&self, other: &IdList) -> IdList {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        IdList(out)
    }
}

/// A class member: a frequent pattern, whether its last element extends the
/// previous transaction (event atom) or opens one (sequence atom), and its
/// ID-list.
#[derive(Debug, Clone)]
struct Atom {
    pattern: Sequence,
    is_event: bool,
    idlist: IdList,
}

/// The SPADE miner.
#[derive(Debug, Clone, Default)]
pub struct Spade {
    _private: (),
}

impl SequentialMiner for Spade {
    fn name(&self) -> &str {
        "SPADE"
    }

    fn mine(&self, db: &SequenceDatabase, min_support: MinSupport) -> MiningResult {
        let guard = MineGuard::unlimited();
        let mut result = MiningResult::new();
        mine_inner(db, min_support, &guard, &mut result).expect("unlimited guard never aborts");
        result
    }

    fn mine_guarded(
        &self,
        db: &SequenceDatabase,
        min_support: MinSupport,
        guard: &MineGuard,
    ) -> GuardedResult {
        run_guarded(guard, |result| mine_inner(db, min_support, guard, result))
    }
}

/// The cooperative core: one checkpoint per vertical-scan row and per
/// ID-list join, one pattern note per frequent pattern.
fn mine_inner(
    db: &SequenceDatabase,
    min_support: MinSupport,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    let delta = min_support.resolve(db.len());

    // Vertical format: one ID-list per item.
    let mut vertical: BTreeMap<Item, Vec<(u32, u32)>> = BTreeMap::new();
    for (sid, s) in db.sequences().enumerate() {
        guard.checkpoint()?;
        for (eid, set) in s.itemsets().iter().enumerate() {
            for item in set.iter() {
                vertical.entry(item).or_default().push((sid as u32, eid as u32));
            }
        }
    }

    // Frequent 1-sequences: the root class (all sequence atoms).
    let mut root: Vec<Atom> = Vec::new();
    for (item, pairs) in vertical {
        let idlist = IdList(pairs);
        let support = idlist.support();
        if support >= delta {
            guard.note_pattern()?;
            result.insert(Sequence::single(item), support);
            root.push(Atom { pattern: Sequence::single(item), is_event: false, idlist });
        }
    }

    mine_class(&root, delta, guard, result)
}

/// Depth-first class decomposition: for each atom X of the class, derive
/// its child class by joining X with every atom of the class, then recurse.
fn mine_class(
    class: &[Atom],
    delta: u64,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    for x in class {
        let mut children: Vec<Atom> = Vec::new();
        let x_item = x.pattern.last_flat_item().expect("non-empty");
        for y in class {
            guard.checkpoint()?;
            let y_item = y.pattern.last_flat_item().expect("non-empty");
            match (x.is_event, y.is_event) {
                (true, true) => {
                    if y_item > x_item {
                        push_if_frequent(
                            &mut children,
                            x.pattern.extended(ExtElem { item: y_item, mode: ExtMode::Itemset }),
                            true,
                            x.idlist.equality_join(&y.idlist),
                            delta,
                            guard,
                            result,
                        )?;
                    }
                }
                (true, false) | (false, false) => {
                    // X followed by (y): temporal join.
                    push_if_frequent(
                        &mut children,
                        x.pattern.extended(ExtElem { item: y_item, mode: ExtMode::Sequence }),
                        false,
                        x.idlist.temporal_join(&y.idlist),
                        delta,
                        guard,
                        result,
                    )?;
                    // Sequence × sequence additionally yields the event atom.
                    if !x.is_event && y_item > x_item {
                        push_if_frequent(
                            &mut children,
                            x.pattern.extended(ExtElem { item: y_item, mode: ExtMode::Itemset }),
                            true,
                            x.idlist.equality_join(&y.idlist),
                            delta,
                            guard,
                            result,
                        )?;
                    }
                }
                (false, true) => {} // covered symmetrically
            }
        }
        mine_class(&children, delta, guard, result)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn push_if_frequent(
    children: &mut Vec<Atom>,
    pattern: Sequence,
    is_event: bool,
    idlist: IdList,
    delta: u64,
    guard: &MineGuard,
    result: &mut MiningResult,
) -> Result<(), AbortReason> {
    let support = idlist.support();
    if support >= delta {
        guard.note_pattern()?;
        result.insert(pattern.clone(), support);
        children.push(Atom { pattern, is_event, idlist });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{parse_sequence, BruteForce};

    fn table1() -> SequenceDatabase {
        SequenceDatabase::from_parsed(&[
            "(a,e,g)(b)(h)(f)(c)(b,f)",
            "(b)(d,f)(e)",
            "(b,f,g)",
            "(f)(a,g)(b,f,h)(b,f)",
        ])
        .unwrap()
    }

    /// The ID-list of a pattern by definitional enumeration, for tests.
    fn idlist_of(db: &SequenceDatabase, pattern: &Sequence) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (sid, s) in db.sequences().enumerate() {
            let n = pattern.n_transactions();
            // Every eid that can host the LAST itemset with the rest before.
            let head = Sequence::new(pattern.itemsets()[..n - 1].to_vec());
            let head_end = disc_core::embed::leftmost_end_txn_or_start(s, &head);
            if let Some(end) = head_end {
                let last = pattern.last_itemset().expect("non-empty");
                for (eid, set) in s.itemsets().iter().enumerate().skip(end.next_txn()) {
                    if last.is_subset_of(set) {
                        out.push((sid as u32, eid as u32));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn section_1_1_idlist_example() {
        // "the ID-list of sequence <(a, g)(b)> is <(1,2), (1,6), (4,3),
        // (4,4)>" (1-based sids and eids; ours are 0-based).
        let db = table1();
        let pat = parse_sequence("(a,g)(b)").unwrap();
        assert_eq!(idlist_of(&db, &pat), vec![(0, 1), (0, 5), (3, 2), (3, 3)]);
    }

    #[test]
    fn section_1_1_merge_example() {
        // Merging <(a,g)(h)> and <(a,g)(f)> yields <(a,g)(h)(f)> with
        // ID-list <(1,4), (1,6), (4,4)> (1-based) and support 2.
        let db = table1();
        let xh = IdList(idlist_of(&db, &parse_sequence("(a,g)(h)").unwrap()));
        let xf = IdList(idlist_of(&db, &parse_sequence("(a,g)(f)").unwrap()));
        assert_eq!(xh.pairs(), &[(0, 2), (3, 2)]);
        assert_eq!(xf.pairs(), &[(0, 3), (0, 5), (3, 2), (3, 3)]);
        let joined = xh.temporal_join(&xf);
        assert_eq!(joined.pairs(), &[(0, 3), (0, 5), (3, 3)]);
        assert_eq!(joined.support(), 2);
    }

    #[test]
    fn equality_join_intersects() {
        let a = IdList(vec![(0, 1), (0, 2), (1, 0)]);
        let b = IdList(vec![(0, 2), (1, 0), (2, 5)]);
        assert_eq!(a.equality_join(&b).pairs(), &[(0, 2), (1, 0)]);
    }

    #[test]
    fn matches_brute_force_on_table_1() {
        let db = table1();
        for delta in 1..=4 {
            let expected = BruteForce::default().mine(&db, MinSupport::Count(delta));
            let got = Spade::default().mine(&db, MinSupport::Count(delta));
            let diff = got.diff(&expected);
            assert!(diff.is_empty(), "δ={delta}:\n{}", diff.join("\n"));
        }
    }

    #[test]
    fn repeated_items_within_customer_count_once() {
        let db = SequenceDatabase::from_parsed(&["(a)(a)(a)", "(a)(b)"]).unwrap();
        let r = Spade::default().mine(&db, MinSupport::Count(2));
        assert_eq!(r.support_of(&parse_sequence("(a)").unwrap()), Some(2));
        assert!(!r.contains_pattern(&parse_sequence("(a)(a)").unwrap()));
    }
}
