//! # disc-baselines
//!
//! From-scratch implementations of the classic sequential-pattern miners the
//! DISC paper compares against or classifies (Table 5):
//!
//! | miner | paper | strategy summary |
//! |---|---|---|
//! | [`PrefixSpan`] | Pei et al., ICDE 2001 | recursive physical database projection |
//! | [`PseudoPrefixSpan`] | ibid. (pseudo-projection) | projection by pivots into the original sequences |
//! | [`Gsp`] | Srikant & Agrawal, EDBT 1996 | level-wise candidate generation + containment scans |
//! | [`Spade`] | Zaki, Machine Learning 2001 | vertical ID-lists with temporal/equality joins |
//! | [`Spam`] | Ayres et al., KDD 2002 | vertical bitmaps with S-/I-step transforms |
//!
//! Every miner implements [`disc_core::SequentialMiner`], returns the
//! complete frequent set with exact supports, and is cross-validated against
//! the brute-force reference (and against DISC-all in the workspace
//! integration tests). The Figure 8–10 benchmarks race them against
//! DISC-all / Dynamic DISC-all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gsp;
pub mod prefixspan;
pub mod pseudo;
pub mod spade;
pub mod spam;

pub use gsp::Gsp;
pub use prefixspan::PrefixSpan;
pub use pseudo::PseudoPrefixSpan;
pub use spade::Spade;
pub use spam::Spam;

/// All baseline miners, boxed, for harness iteration.
pub fn all_baselines() -> Vec<Box<dyn disc_core::SequentialMiner>> {
    vec![
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
        Box::new(Gsp::default()),
        Box::new(Spade::default()),
        Box::new(Spam::default()),
    ]
}
