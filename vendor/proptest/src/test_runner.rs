//! The deterministic test runner: per-case RNG, configuration, and the
//! pass/fail/reject outcome type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Runner configuration. Only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many accepted (non-rejected) cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The test asserted something false; the whole test fails.
    Fail(String),
    /// The inputs violated an assumption (`prop_assume!`); the case is
    /// skipped and regenerated.
    Reject(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected-input outcome with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The per-case random source strategies draw from.
pub struct TestRng(StdRng);

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test and every case gets an independent, reproducible stream.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runs `test` on `config.cases` generated inputs, panicking on the first
/// failure. Rejected cases (via `prop_assume!`) are regenerated, with an
/// overall attempt budget so a too-strict assumption cannot loop forever.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let max_attempts = u64::from(config.cases).saturating_mul(8).max(64);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut attempts = 0u64;
    while accepted < u64::from(config.cases) && attempts < max_attempts {
        let mut rng = TestRng::for_case(name, attempts);
        let value = strategy.generate(&mut rng);
        attempts += 1;
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(message)) => panic!(
                "proptest '{name}' failed at case index {index} \
                 (after {accepted} passing cases):\n{message}\n\
                 note: this offline proptest stand-in does not shrink inputs",
                index = attempts - 1,
            ),
        }
    }
    if accepted == 0 {
        panic!("proptest '{name}': every generated case was rejected ({rejected} rejections)");
    }
}
