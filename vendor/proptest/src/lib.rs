//! A small, self-contained stand-in for the `proptest` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate reimplements the slice of proptest the workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`, range /
//! tuple / [`Just`](strategy::Just) / [`any`] strategies, weighted
//! [`prop_oneof!`], `prop::collection::{vec, btree_set}`, the [`proptest!`]
//! test macro with `#![proptest_config(..)]`, and the `prop_assert*` /
//! [`prop_assume!`] assertion macros.
//!
//! Inputs are generated deterministically (seeded from the test name and
//! case index) so failures reproduce. **Shrinking is not implemented**: a
//! failing case reports the case index and the assertion message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::any;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])+
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, stringify!($name), &strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_each! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current test case (with an optional formatted message) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!(),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}` at {}:{}",
                format_args!($($fmt)+),
                left,
                right,
                file!(),
                line!(),
            )));
        }
    }};
}

/// Rejects the current test case (it is regenerated, not failed) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses between several strategies producing the same value type, with
/// optional integer weights (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
