//! The [`Strategy`] trait and the primitive strategies: integer ranges,
//! tuples, [`Just`], [`any`], mapping, and weighted unions.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with an obvious "any value" distribution, usable via [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

macro_rules! arbitrary_tuples {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: ArbitraryValue),+> ArbitraryValue for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )*};
}
arbitrary_tuples! {
    (A, B)
    (A, B, C)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (full-range integers, fair bools).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Boxes a strategy for storage in heterogeneous collections such as
/// [`Union`]. Used by the [`prop_oneof!`](crate::prop_oneof) expansion.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// A weighted choice between strategies with a common value type — the
/// engine behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms. Panics if `arms` is
    /// empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(!arms.is_empty() && total > 0, "prop_oneof! needs weighted arms");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight")
    }
}
