//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Anything accepted as a collection size: a fixed `usize`, `lo..hi`, or
/// `lo..=hi` (all over `usize`).
pub trait SizeRange {
    /// Inclusive `(lo, hi)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

fn draw_len(rng: &mut TestRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo + 1)
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = draw_len(rng, self.lo, self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length lies in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = draw_len(rng, self.lo, self.hi);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set, so allow extra draws before giving up
        // (the element domain may be smaller than `target`).
        for _ in 0..(target * 20).max(20) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// A strategy for `BTreeSet`s with `size` distinct elements from `element`.
/// If the element domain is too small the set may come out smaller.
pub fn btree_set<S: Strategy>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    let (lo, hi) = size.bounds();
    BTreeSetStrategy { element, lo, hi }
}
