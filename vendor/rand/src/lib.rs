//! A small, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the workspace actually uses are reimplemented
//! here: the [`Rng`] extension surface (`gen::<f64>()`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a well-studied, fast, deterministic PRNG that is more than
//! adequate for workload generation and property-test inputs. It is **not**
//! the same stream as upstream `rand`'s `StdRng`, and it is not
//! cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A source of randomness plus the convenience methods the workspace uses.
///
/// Mirrors the subset of `rand::Rng` in use: `gen`, `gen_range`, `gen_bool`.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Generates a value whose type implements [`Standard`] sampling
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generates a value uniformly inside `range` (half-open or inclusive
    /// integer ranges). Panics on an empty range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled from a uniform "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::unnecessary_cast)]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::gen_range`] can produce. Mirroring upstream
/// `rand`'s blanket-impl structure (one `SampleRange` impl per range shape,
/// generic over `T: SampleUniform`) keeps type inference working at call
/// sites like `slice[rng.gen_range(0..4)]`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the caller guarantees the value fits).
    fn from_i128(v: i128) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_between<T: SampleUniform, R: Rng + ?Sized>(rng: &mut R, lo: T, hi_incl: T) -> T {
    let span = (hi_incl.to_i128() - lo.to_i128()) as u128 + 1;
    let off = (rng.next_u64() as u128) % span;
    T::from_i128(lo.to_i128() + off as i128)
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        uniform_between(rng, self.start, T::from_i128(self.end.to_i128() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        uniform_between(rng, lo, hi)
    }
}

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
            assert!((10u64..20).contains(&rng.gen_range(10u64..20)));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }
}
