//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate provides just enough of criterion's API for the workspace's
//! `harness = false` benches to compile and run: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both forms).
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! iteration, then up to `sample_size` timed iterations bounded by
//! `measurement_time`, and prints the mean and minimum wall-clock time.
//! There is no statistical analysis, outlier detection, or HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver. Construct with [`Criterion::default`], configure
/// with the builder methods, and register benchmarks with
/// [`Criterion::bench_function`] or [`Criterion::benchmark_group`].
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark aims for.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget (at least one warm-up iteration always runs).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the wall-clock budget for the timed iterations.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = self.bencher(id);
        f(&mut bencher);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn bencher(&self, label: &str) -> Bencher {
        Bencher {
            label: label.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = self.criterion.bencher(&label);
        f(&mut bencher);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = self.criterion.bencher(&label);
        f(&mut bencher, input);
    }

    /// Ends the group (a no-op in this stand-in).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times a closure inside a benchmark body.
pub struct Bencher {
    label: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and prints mean / minimum wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least one run, up to the warm-up budget.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let budget_start = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            samples.push(start.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{:<48} mean {:>12.3?}  min {:>12.3?}  ({} iters)",
            self.label,
            mean,
            min,
            samples.len()
        );
    }
}

/// Prevents the optimiser from discarding a value. Re-exported for parity
/// with criterion's API; `std::hint::black_box` works equally well.
pub use std::hint::black_box;

/// Declares a group of benchmark functions. Supports both the positional
/// form and the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
