//! # disc-miner
//!
//! Frequent sequence mining with the **DISC strategy** — a reproduction of
//! *"An Efficient Algorithm for Mining Frequent Sequences by a New Strategy
//! without Support Counting"* (Chiu, Wu, Chen — ICDE 2004), with the
//! classic baselines, the IBM-Quest-style workload generator, and the
//! paper's full benchmark suite.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the sequence data model, comparative order, and the
//!   [`SequentialMiner`](disc_core::SequentialMiner) interface;
//! * [`algo`] — [`DiscAll`](disc_algo::DiscAll),
//!   [`DynamicDiscAll`](disc_algo::DynamicDiscAll), and the sharded
//!   [`ParallelDiscAll`](disc_algo::ParallelDiscAll);
//! * [`baselines`] — PrefixSpan, Pseudo, GSP, SPADE, SPAM;
//! * [`datagen`] — the synthetic customer-sequence generator;
//! * [`tree`] — the locative AVL tree;
//! * [`server`] — mining-as-a-service: the multi-tenant job server behind
//!   `disc-mine serve`.
//!
//! ## Quickstart
//!
//! ```
//! use disc_miner::prelude::*;
//!
//! let db = SequenceDatabase::from_parsed(&[
//!     "(a,e,g)(b)(h)(f)(c)(b,f)",
//!     "(b)(d,f)(e)",
//!     "(b,f,g)",
//!     "(f)(a,g)(b,f,h)(b,f)",
//! ]).unwrap();
//!
//! let patterns = DiscAll::default().mine(&db, MinSupport::Count(2));
//! for (pattern, support) in patterns.iter() {
//!     println!("{pattern}  [support {support}]");
//! }
//! assert_eq!(patterns.support_of(&parse_sequence("(a,g)(b)(f)").unwrap()), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use disc_algo as algo;
pub use disc_baselines as baselines;
pub use disc_core as core;
pub use disc_datagen as datagen;
pub use disc_server as server;
pub use disc_tree as tree;

/// The most common imports in one place.
pub mod prelude {
    pub use disc_algo::{
        nrr_by_level, CheckpointStats, Checkpointable, DiscAll, DiscConfig, DynamicDiscAll,
        ParallelDiscAll, Resumable, WeightedDatabase, WeightedDisc, CHECKPOINT_FILE,
    };
    pub use disc_baselines::{Gsp, PrefixSpan, PseudoPrefixSpan, Spade, Spam};
    pub use disc_core::{
        fsck, parse_sequence, retry_transient, AbortReason, BruteForce, CancelToken,
        CheckpointError, CompactionReport, DiscError, FallbackMiner, FsckReport, GuardStats,
        GuardedResult, Item, Itemset, MinSupport, MineGuard, MineOutcome, MiningResult,
        ParallelExecutor, RecoveryReport, ResourceBudget, RetryPolicy, Sequence, SequenceDatabase,
        SequenceStore, SequentialMiner, StageReport, StoreConfig, StoreError, SyncPolicy, TopK,
    };
    pub use disc_datagen::QuestConfig;
}

/// Every miner in the workspace, boxed, in the order used by reports.
pub fn all_miners() -> Vec<Box<dyn disc_core::SequentialMiner>> {
    let mut miners: Vec<Box<dyn disc_core::SequentialMiner>> = vec![
        Box::new(disc_algo::DiscAll::default()),
        Box::new(disc_algo::DynamicDiscAll::default()),
        Box::new(disc_algo::ParallelDiscAll::new()),
    ];
    miners.extend(disc_baselines::all_baselines());
    miners
}
