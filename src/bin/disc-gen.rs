//! `disc-gen` — generate Quest-style synthetic customer-sequence datasets.
//!
//! ```text
//! disc-gen [--ncust N] [--slen F] [--tlen F] [--nitems N] [--patlen F]
//!          [--seed N] [--preset table11|fig9] [--binary] [-o FILE]
//! ```
//!
//! Text output is the `cid: (a, b)(c)` line format `disc-mine` reads;
//! `--binary` writes the compact DSCDB1 codec instead.

use disc_miner::prelude::*;
use std::io::Write;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: disc-gen [--preset table11|fig9] [--ncust N] [--slen F] [--tlen F]\n\
         \t[--nitems N] [--patlen F] [--seed N] [--binary] [-o FILE]"
    );
    exit(2);
}

fn main() {
    let mut cfg = QuestConfig::paper_table11().with_ncust(1000);
    let mut out_path: Option<String> = None;
    let mut binary = false;

    fn next_f64(args: &mut impl Iterator<Item = String>) -> f64 {
        args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage())
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                cfg = match args.next().as_deref() {
                    Some("table11") => QuestConfig::paper_table11(),
                    Some("fig9") => QuestConfig::paper_fig9(),
                    _ => usage(),
                };
            }
            "--ncust" => cfg.ncust = next_f64(&mut args) as usize,
            "--slen" => cfg.slen = next_f64(&mut args),
            "--tlen" => cfg.tlen = next_f64(&mut args),
            "--nitems" => cfg.nitems = next_f64(&mut args) as u32,
            "--patlen" => cfg.patlen = next_f64(&mut args),
            "--seed" => cfg.seed = next_f64(&mut args) as u64,
            "--binary" => binary = true,
            "-o" | "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let db = cfg.generate();
    let stats = db.stats();
    eprintln!(
        "# generated {} customers ({:.2} txns × {:.2} items, {} distinct items, seed {})",
        stats.customers,
        stats.avg_transactions,
        stats.avg_items_per_transaction,
        stats.distinct_items,
        cfg.seed
    );

    let bytes =
        if binary { disc_miner::core::encode_database(&db) } else { db.to_text().into_bytes() };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &bytes) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!("# wrote {} bytes to {path}", bytes.len());
        }
        None => {
            let _ = std::io::stdout().lock().write_all(&bytes);
        }
    }
}
