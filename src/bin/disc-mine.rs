//! `disc-mine` — command-line frequent-sequence mining.
//!
//! ```text
//! disc-mine <database.txt> --minsup 0.01 [--algo disc-all|dynamic|parallel|prefixspan|pseudo|gsp|spade|spam]
//!           [--min-length N] [--max-patterns N] [--stats]
//!           [--checkpoint-dir DIR] [--resume FILE.dscck]
//! ```
//!
//! The database format is one customer per line: `cid: (a, b)(c)(a, d)` —
//! items are lowercase letters or decimal numbers; `#` starts a comment.
//! Output: one pattern per line with its support, in comparative order.

use disc_miner::prelude::*;
use std::process::exit;

struct Args {
    path: String,
    minsup: MinSupport,
    algo: String,
    min_length: usize,
    max_patterns: usize,
    stats: bool,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: disc-mine <database.txt> [--minsup FRACTION | --delta COUNT]\n\
         \t[--algo disc-all|dynamic|parallel|prefixspan|pseudo|gsp|spade|spam|brute]\n\
         \t[--min-length N] [--max-patterns N] [--stats]\n\
         \t[--checkpoint-dir DIR] [--resume FILE.dscck]\n\
         --checkpoint-dir writes durable snapshots at partition boundaries (and\n\
         auto-resumes a valid one); --resume continues from an explicit snapshot\n\
         file, rejecting corrupted or mismatched files. Both support the\n\
         disc-all, dynamic, and parallel algorithms only."
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        path: String::new(),
        minsup: MinSupport::Fraction(0.01),
        algo: "disc-all".into(),
        min_length: 1,
        max_patterns: usize::MAX,
        stats: false,
        checkpoint_dir: None,
        resume: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--minsup" => {
                let v: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Fraction(v);
            }
            "--delta" => {
                let v: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Count(v);
            }
            "--algo" => out.algo = args.next().unwrap_or_else(|| usage()),
            "--min-length" => {
                out.min_length =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--max-patterns" => {
                out.max_patterns =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--stats" => out.stats = true,
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--resume" => out.resume = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && out.path.is_empty() => out.path = path.to_string(),
            _ => usage(),
        }
    }
    if out.path.is_empty() {
        usage();
    }
    if out.checkpoint_dir.is_some() && out.resume.is_some() {
        eprintln!("--checkpoint-dir and --resume are mutually exclusive; --resume already writes further snapshots next to the resumed file");
        usage();
    }
    out
}

fn miner_by_name(name: &str, checkpoint_dir: Option<&str>) -> Box<dyn SequentialMiner> {
    // With --checkpoint-dir the DISC miners are wrapped in `Resumable`:
    // durable snapshots at partition boundaries, auto-resuming a valid one.
    if let Some(dir) = checkpoint_dir {
        return match name {
            "disc-all" => Box::new(Resumable::new(DiscAll::default(), dir)),
            "dynamic" => Box::new(Resumable::new(DynamicDiscAll::default(), dir)),
            "parallel" => Box::new(Resumable::new(ParallelDiscAll::default(), dir)),
            other => {
                eprintln!("--checkpoint-dir supports disc-all, dynamic, parallel; got {other:?}");
                usage();
            }
        };
    }
    match name {
        "disc-all" => Box::new(DiscAll::default()),
        "dynamic" => Box::new(DynamicDiscAll::default()),
        "parallel" => Box::new(ParallelDiscAll::default()),
        "prefixspan" => Box::new(PrefixSpan::default()),
        "pseudo" => Box::new(PseudoPrefixSpan::default()),
        "gsp" => Box::new(Gsp::default()),
        "spade" => Box::new(Spade::default()),
        "spam" => Box::new(Spam::default()),
        "brute" => Box::new(BruteForce::default()),
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage();
        }
    }
}

/// Continues from an explicit snapshot file; typed rejection (corrupted,
/// truncated, stale-version, wrong database, wrong δ) exits with code 1.
/// Further snapshots are written next to the file being resumed.
fn run_resume(
    algo: &str,
    file: &str,
    db: &SequenceDatabase,
    minsup: MinSupport,
) -> (String, MiningResult) {
    fn go<M: Checkpointable>(
        miner: M,
        file: &str,
        db: &SequenceDatabase,
        minsup: MinSupport,
    ) -> (String, MiningResult) {
        let path = std::path::Path::new(file);
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => std::path::Path::new("."),
        };
        let wrapped = Resumable::new(miner, dir);
        match wrapped.resume_from(path, db, minsup, &MineGuard::unlimited()) {
            Ok(run) => (wrapped.name().to_string(), run.result),
            Err(e) => {
                eprintln!("cannot resume from {file}: {e}");
                exit(1);
            }
        }
    }
    match algo {
        "disc-all" => go(DiscAll::default(), file, db, minsup),
        "dynamic" => go(DynamicDiscAll::default(), file, db, minsup),
        "parallel" => go(ParallelDiscAll::default(), file, db, minsup),
        other => {
            eprintln!("--resume supports disc-all, dynamic, parallel; got {other:?}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let bytes = match std::fs::read(&args.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.path);
            exit(1);
        }
    };
    // Accept both formats disc-gen writes: the text line format and the
    // compact DSCDB1 binary (detected by its magic).
    let db = if bytes.starts_with(b"DSCDB1\n") {
        match disc_miner::core::decode_database(&bytes) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot decode {}: {e}", args.path);
                exit(1);
            }
        }
    } else {
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("cannot parse {}: neither DSCDB1 binary nor UTF-8 text", args.path);
                exit(1);
            }
        };
        match SequenceDatabase::from_text(&text) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", args.path);
                exit(1);
            }
        }
    };
    if args.stats {
        let s = db.stats();
        eprintln!(
            "# {} customers, {:.2} transactions/customer, {:.2} items/transaction, {} distinct items",
            s.customers, s.avg_transactions, s.avg_items_per_transaction, s.distinct_items
        );
    }

    let resolved = args.minsup.resolve(db.len());
    if resolved <= 2 && db.len() > 100 {
        eprintln!(
            "# warning: threshold resolves to δ = {resolved}; on non-trivial data the \
             frequent set (and runtime) grows exponentially at such low support"
        );
    }
    let start = std::time::Instant::now();
    let mine = |db: &SequenceDatabase| -> (String, MiningResult) {
        if let Some(file) = &args.resume {
            run_resume(&args.algo, file, db, args.minsup)
        } else {
            let miner = miner_by_name(&args.algo, args.checkpoint_dir.as_deref());
            let result = miner.mine(db, args.minsup);
            (miner.name().to_string(), result)
        }
    };
    // Sparse item-id spaces would make the miners' dense per-item arrays
    // huge; compact ids transparently and translate the patterns back.
    // Analyze first: the common dense case then never copies the database.
    // Checkpoints fingerprint the database *after* this step; the mapping
    // is a pure function of the database, so snapshots stay valid across
    // invocations on the same input.
    let mapping = disc_miner::core::ItemMapping::analyze(&db);
    let (miner_name, result) = if mapping.is_worthwhile() {
        if args.stats {
            eprintln!("# compacted {} distinct items onto 0..{}", mapping.len(), mapping.len());
        }
        let compacted = mapping.remap_database(&db);
        let (name, result) = mine(&compacted);
        (name, mapping.restore_result(&result))
    } else {
        mine(&db)
    };
    if args.stats {
        eprintln!(
            "# {}: {} frequent sequences (max length {}) in {:.3?}",
            miner_name,
            result.len(),
            result.max_length(),
            start.elapsed()
        );
    }

    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (pattern, support) in
        result.iter().filter(|(p, _)| p.length() >= args.min_length).take(args.max_patterns)
    {
        if writeln!(lock, "{support}\t{pattern}").is_err() {
            break; // downstream pipe closed (e.g. `| head`)
        }
    }
}
