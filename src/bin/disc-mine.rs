//! `disc-mine` — command-line frequent-sequence mining.
//!
//! ```text
//! disc-mine <database.txt> --minsup 0.01 [--algo disc-all|dynamic|parallel|prefixspan|pseudo|gsp|spade|spam]
//!           [--min-length N] [--max-patterns N] [--stats]
//!           [--checkpoint-dir DIR] [--resume FILE.dscck]
//! disc-mine pack <database.txt|.dscdb> <out.dscfd>
//! disc-mine store ingest <database.txt> --dir DIR [--sync always|never|N]
//!           [--segment-bytes N] [--compact] [--stats]
//! disc-mine store compact --dir DIR
//! disc-mine store fsck --dir DIR
//! disc-mine store mine --dir DIR [--mmap] [mining flags as above]
//! disc-mine serve --data-dir DIR [--addr HOST:PORT] [--threads N]
//!           [--slice-ops N] [--cache-entries N]
//! ```
//!
//! The database format is one customer per line: `cid: (a, b)(c)(a, d)` —
//! items are lowercase letters or decimal numbers; `#` starts a comment.
//! Output: one pattern per line with its support, in comparative order.
//!
//! A `.dscfd` flat file (written by `disc-mine pack` or mirrored by
//! `disc-mine store compact`) is detected by its magic and mined straight
//! off a memory mapping — the columns are never copied to the heap, so
//! databases larger than memory mine out-of-core. `store mine --mmap`
//! mines the store's compacted mirror the same way, refusing stale
//! mirrors (appends since the last compaction) rather than dropping rows.
//!
//! Exit codes: 0 on success, 1 on permanent failure (corrupt input, bad
//! store, out of space), 2 on usage errors, 75 (`EX_TEMPFAIL`) when the
//! failure was transient (interrupted IO that retries did not clear) and
//! re-running the same command may succeed.

use disc_miner::prelude::*;
use std::path::{Path, PathBuf};
use std::process::exit;

/// `EX_TEMPFAIL`: the sysexits.h convention for "try again later".
const EXIT_TRANSIENT: i32 = 75;

struct Args {
    path: String,
    minsup: MinSupport,
    algo: String,
    min_length: usize,
    max_patterns: usize,
    stats: bool,
    threads: Option<usize>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: disc-mine <database.txt> [--minsup FRACTION | --delta COUNT]\n\
         \t[--algo disc-all|dynamic|parallel|prefixspan|pseudo|gsp|spade|spam|brute]\n\
         \t[--min-length N] [--max-patterns N] [--stats] [--threads N]\n\
         \t[--checkpoint-dir DIR] [--resume FILE.dscck]\n\
         or:    disc-mine pack <database.txt|.dscdb> <out.dscfd>\n\
         or:    disc-mine store <ingest|compact|fsck|mine> ... (see `disc-mine store --help`)\n\
         or:    disc-mine serve --data-dir DIR ... (see `disc-mine serve --help`)\n\
         A .dscfd input is memory-mapped and mined zero-copy (disc-all,\n\
         dynamic, and parallel only); other inputs are loaded to the heap.\n\
         --checkpoint-dir writes durable snapshots at partition boundaries (and\n\
         auto-resumes a valid one); --resume continues from an explicit snapshot\n\
         file, rejecting corrupted or mismatched files. Both support the\n\
         disc-all, dynamic, and parallel algorithms only."
    );
    exit(2);
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = argv.into_iter();
    let mut out = Args {
        path: String::new(),
        minsup: MinSupport::Fraction(0.01),
        algo: "disc-all".into(),
        min_length: 1,
        max_patterns: usize::MAX,
        stats: false,
        threads: None,
        checkpoint_dir: None,
        resume: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--minsup" => {
                let v: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Fraction(v);
            }
            "--delta" => {
                let v: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Count(v);
            }
            "--algo" => out.algo = args.next().unwrap_or_else(|| usage()),
            "--min-length" => {
                out.min_length =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--max-patterns" => {
                out.max_patterns =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--stats" => out.stats = true,
            "--threads" => {
                let v: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                if v == 0 {
                    eprintln!("--threads must be at least 1");
                    usage();
                }
                out.threads = Some(v);
            }
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--resume" => out.resume = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && out.path.is_empty() => out.path = path.to_string(),
            _ => usage(),
        }
    }
    if out.path.is_empty() {
        usage();
    }
    if out.threads.is_some() && out.algo != "parallel" {
        eprintln!("--threads requires --algo parallel");
        usage();
    }
    if out.checkpoint_dir.is_some() && out.resume.is_some() {
        eprintln!("--checkpoint-dir and --resume are mutually exclusive; --resume already writes further snapshots next to the resumed file");
        usage();
    }
    out
}

/// A parallel miner honoring `--threads` (pool sized by
/// `available_parallelism` when the flag is absent).
fn parallel_miner(threads: Option<usize>) -> ParallelDiscAll {
    match threads {
        Some(n) => ParallelDiscAll::with_threads(n),
        None => ParallelDiscAll::default(),
    }
}

fn miner_by_name(
    name: &str,
    threads: Option<usize>,
    checkpoint_dir: Option<&str>,
) -> Box<dyn SequentialMiner> {
    // With --checkpoint-dir the DISC miners are wrapped in `Resumable`:
    // durable snapshots at partition boundaries, auto-resuming a valid one.
    if let Some(dir) = checkpoint_dir {
        return match name {
            "disc-all" => Box::new(Resumable::new(DiscAll::default(), dir)),
            "dynamic" => Box::new(Resumable::new(DynamicDiscAll::default(), dir)),
            "parallel" => Box::new(Resumable::new(parallel_miner(threads), dir)),
            other => {
                eprintln!("--checkpoint-dir supports disc-all, dynamic, parallel; got {other:?}");
                usage();
            }
        };
    }
    match name {
        "disc-all" => Box::new(DiscAll::default()),
        "dynamic" => Box::new(DynamicDiscAll::default()),
        "parallel" => Box::new(parallel_miner(threads)),
        "prefixspan" => Box::new(PrefixSpan::default()),
        "pseudo" => Box::new(PseudoPrefixSpan::default()),
        "gsp" => Box::new(Gsp::default()),
        "spade" => Box::new(Spade::default()),
        "spam" => Box::new(Spam::default()),
        "brute" => Box::new(BruteForce::default()),
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage();
        }
    }
}

/// Continues from an explicit snapshot file; typed rejection (corrupted,
/// truncated, stale-version, wrong database, wrong δ) exits with code 1.
/// Further snapshots are written next to the file being resumed.
fn run_resume(
    algo: &str,
    threads: Option<usize>,
    file: &str,
    db: &SequenceDatabase,
    minsup: MinSupport,
) -> (String, MiningResult) {
    fn go<M: Checkpointable>(
        miner: M,
        file: &str,
        db: &SequenceDatabase,
        minsup: MinSupport,
    ) -> (String, MiningResult) {
        let path = Path::new(file);
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        let wrapped = Resumable::new(miner, dir);
        match wrapped.resume_from(path, db, minsup, &MineGuard::unlimited()) {
            Ok(run) => (wrapped.name().to_string(), run.result),
            Err(e) => {
                eprintln!("cannot resume from {file}: {e}");
                exit(1);
            }
        }
    }
    match algo {
        "disc-all" => go(DiscAll::default(), file, db, minsup),
        "dynamic" => go(DynamicDiscAll::default(), file, db, minsup),
        "parallel" => go(parallel_miner(threads), file, db, minsup),
        other => {
            eprintln!("--resume supports disc-all, dynamic, parallel; got {other:?}");
            usage();
        }
    }
}

/// Loads a database file, accepting both formats disc-gen writes: the text
/// line format and the compact DSCDB1 binary (detected by its magic).
fn load_database(path: &str) -> SequenceDatabase {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(if disc_miner::core::is_transient_io_kind(e.kind()) { EXIT_TRANSIENT } else { 1 });
        }
    };
    if bytes.starts_with(b"DSCDB1\n") {
        match disc_miner::core::decode_database(&bytes) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot decode {path}: {e}");
                exit(1);
            }
        }
    } else {
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("cannot parse {path}: neither DSCDB1 binary nor UTF-8 text");
                exit(1);
            }
        };
        match SequenceDatabase::from_text(&text) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                exit(1);
            }
        }
    }
}

/// Mines `db` per `args` and prints the patterns — the shared back half of
/// `disc-mine <file>` and `disc-mine store mine`.
fn run_mining(db: &SequenceDatabase, args: &Args) {
    if args.stats {
        let s = db.stats();
        eprintln!(
            "# {} customers, {:.2} transactions/customer, {:.2} items/transaction, {} distinct items",
            s.customers, s.avg_transactions, s.avg_items_per_transaction, s.distinct_items
        );
    }

    let resolved = args.minsup.resolve(db.len());
    if resolved <= 2 && db.len() > 100 {
        eprintln!(
            "# warning: threshold resolves to δ = {resolved}; on non-trivial data the \
             frequent set (and runtime) grows exponentially at such low support"
        );
    }
    let start = std::time::Instant::now();
    let mine = |db: &SequenceDatabase| -> (String, MiningResult) {
        if let Some(file) = &args.resume {
            run_resume(&args.algo, args.threads, file, db, args.minsup)
        } else {
            let miner = miner_by_name(&args.algo, args.threads, args.checkpoint_dir.as_deref());
            let result = miner.mine(db, args.minsup);
            (miner.name().to_string(), result)
        }
    };
    // Sparse item-id spaces would make the miners' dense per-item arrays
    // huge; compact ids transparently and translate the patterns back.
    // Analyze first: the common dense case then never copies the database.
    // Checkpoints fingerprint the database *after* this step; the mapping
    // is a pure function of the database, so snapshots stay valid across
    // invocations on the same input.
    let mapping = disc_miner::core::ItemMapping::analyze(db);
    let (miner_name, result) = if mapping.is_worthwhile() {
        if args.stats {
            eprintln!("# compacted {} distinct items onto 0..{}", mapping.len(), mapping.len());
        }
        let compacted = mapping.remap_database(db);
        let (name, result) = mine(&compacted);
        (name, mapping.restore_result(&result))
    } else {
        mine(db)
    };
    if args.stats {
        eprintln!(
            "# {}: {} frequent sequences (max length {}) in {:.3?}",
            miner_name,
            result.len(),
            result.max_length(),
            start.elapsed()
        );
    }

    print_patterns(&result, args);
}

fn print_patterns(result: &MiningResult, args: &Args) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (pattern, support) in
        result.iter().filter(|(p, _)| p.length() >= args.min_length).take(args.max_patterns)
    {
        if writeln!(lock, "{support}\t{pattern}").is_err() {
            break; // downstream pipe closed (e.g. `| head`)
        }
    }
}

/// True when `path` starts with the `DSCFD1` flat-file magic. Reads only
/// the first 8 bytes — the whole point is not to load the file.
fn is_flat_file(path: &str) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else { return false };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && magic == disc_miner::core::FLAT_FILE_MAGIC
}

/// Mines a memory-mapped flat file without ever materialising the heap
/// database — the out-of-core back half shared by `disc-mine <file.dscfd>`
/// and `disc-mine store mine --mmap`.
fn run_mining_flat(contents: &disc_miner::core::FlatFileContents, args: &Args) {
    if args.checkpoint_dir.is_some() || args.resume.is_some() {
        eprintln!("--checkpoint-dir/--resume are not supported on memory-mapped flat files");
        usage();
    }
    if args.stats {
        eprintln!(
            "# flat file: {} rows, {} bytes, {} item ids, columns {}",
            contents.flat.len(),
            contents.file_bytes,
            contents.mapping.len(),
            if contents.is_mapped() { "memory-mapped (zero-copy)" } else { "heap (mmap fallback)" },
        );
    }
    let start = std::time::Instant::now();
    let flat = &contents.flat;
    let (name, compact_result) = match args.algo.as_str() {
        "disc-all" => ("DISC-all", DiscAll::default().mine_flat(flat, args.minsup)),
        "dynamic" => ("Dynamic DISC-all", DynamicDiscAll::default().mine_flat(flat, args.minsup)),
        "parallel" => {
            ("DISC-all (parallel)", parallel_miner(args.threads).mine_flat(flat, args.minsup))
        }
        other => {
            eprintln!("flat-file mining supports disc-all, dynamic, parallel; got {other:?}");
            usage();
        }
    };
    // The file stores compact item ids; translate patterns back through the
    // on-disk dictionary.
    let result = contents.mapping.restore_result(&compact_result);
    if args.stats {
        eprintln!(
            "# {}: {} frequent sequences (max length {}) in {:.3?}",
            name,
            result.len(),
            result.max_length(),
            start.elapsed()
        );
    }
    print_patterns(&result, args);
}

/// `disc-mine pack`: convert a text or DSCDB1 database into the DSCFD1
/// columnar flat file that mines straight off a memory mapping.
fn pack_main(argv: Vec<String>) -> ! {
    let (input, output) = match argv.as_slice() {
        [i, o] if !i.starts_with('-') && !o.starts_with('-') => (i.clone(), o.clone()),
        _ => {
            eprintln!("usage: disc-mine pack <database.txt|.dscdb> <out.dscfd>");
            exit(2);
        }
    };
    let db = load_database(&input);
    let bytes = disc_miner::core::encode_database_flat_file(&db);
    match disc_miner::core::write_flat_file(Path::new(&output), &bytes) {
        Ok(written) => {
            eprintln!("# packed {} rows into {output} ({written} bytes)", db.len());
            exit(0);
        }
        Err(e) => {
            eprintln!("cannot write {output}: {e}");
            exit(if e.is_transient() { EXIT_TRANSIENT } else { 1 });
        }
    }
}

// ---------------------------------------------------------------------------
// The `store` subcommand family: durable WAL-backed ingestion.
// ---------------------------------------------------------------------------

fn store_usage() -> ! {
    eprintln!(
        "usage: disc-mine store <subcommand> ...\n\
         \tingest <database.txt|.dscdb> --dir DIR [--sync always|never|N]\n\
         \t\t[--segment-bytes N] [--compact] [--stats]\n\
         \tcompact --dir DIR\n\
         \tfsck --dir DIR\n\
         \tmine --dir DIR [--mmap] [--minsup FRACTION | --delta COUNT] [--algo NAME]\n\
         \t\t[--min-length N] [--max-patterns N] [--stats]\n\
         ingest appends each customer sequence to a crash-safe write-ahead log;\n\
         every acknowledged append survives a crash (`--sync always`, the\n\
         default). compact folds sealed segments into a verified immutable\n\
         snapshot. fsck audits without mutating: exit 0 when open() would\n\
         succeed, 1 when the store is corrupt. mine recovers the store and\n\
         mines the restored database; with --mmap it instead memory-maps\n\
         the compacted .dscfd mirror and mines it zero-copy, refusing a\n\
         mirror that is stale relative to the recovered rows.\n\
         Exit codes: 0 ok, 1 permanent failure, 2 usage, 75 transient failure."
    );
    exit(2);
}

/// Reports a store failure and exits 75 for transient faults, 1 otherwise.
fn fail_store(what: &str, e: &StoreError) -> ! {
    eprintln!("{what}: {e}");
    exit(if e.is_transient() { EXIT_TRANSIENT } else { 1 });
}

/// Opens an existing store directory, refusing to invent one: recovery on a
/// missing path would silently create an empty store.
fn open_existing(dir: &str, cfg: StoreConfig) -> SequenceStore {
    if !Path::new(dir).is_dir() {
        eprintln!("no store at {dir}: not a directory");
        exit(1);
    }
    SequenceStore::open(dir, cfg).unwrap_or_else(|e| fail_store("cannot open store", &e))
}

fn print_recovery(store: &SequenceStore) {
    let r = store.recovery_report();
    eprintln!(
        "# recovered {} rows ({} from snapshot, {} replayed from {} segments), \
         {} torn bytes truncated, {} stale segments removed{}",
        store.len(),
        r.snapshot_rows,
        r.replayed_records,
        r.segments_replayed,
        r.truncated_bytes,
        r.stale_segments_removed,
        if r.removed_tmp { ", stray temp file removed" } else { "" },
    );
}

fn store_main(argv: Vec<String>) -> ! {
    let mut args = argv.into_iter();
    let sub = args.next().unwrap_or_else(|| store_usage());
    let mut input: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut cfg = StoreConfig::default();
    let mut do_compact = false;
    let mut use_mmap = false;
    let mut mine_args = Args {
        path: String::new(),
        minsup: MinSupport::Fraction(0.01),
        algo: "disc-all".into(),
        min_length: 1,
        max_patterns: usize::MAX,
        stats: false,
        threads: None,
        checkpoint_dir: None,
        resume: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(args.next().unwrap_or_else(|| store_usage())),
            "--sync" => {
                let v = args.next().unwrap_or_else(|| store_usage());
                cfg.sync = match v.as_str() {
                    "always" => SyncPolicy::Always,
                    "never" => SyncPolicy::Never,
                    n => match n.parse::<u64>() {
                        Ok(n) if n > 0 => SyncPolicy::EveryN(n),
                        _ => store_usage(),
                    },
                };
            }
            "--segment-bytes" => {
                cfg.segment_max_bytes =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
            }
            "--compact" => do_compact = true,
            "--mmap" => use_mmap = true,
            "--minsup" => {
                let v: f64 =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
                mine_args.minsup = MinSupport::Fraction(v);
            }
            "--delta" => {
                let v: u64 =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
                mine_args.minsup = MinSupport::Count(v);
            }
            "--algo" => mine_args.algo = args.next().unwrap_or_else(|| store_usage()),
            "--min-length" => {
                mine_args.min_length =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
            }
            "--max-patterns" => {
                mine_args.max_patterns =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
            }
            "--stats" => mine_args.stats = true,
            "--threads" => {
                let v: usize =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| store_usage());
                if v == 0 {
                    eprintln!("--threads must be at least 1");
                    store_usage();
                }
                mine_args.threads = Some(v);
            }
            "--help" | "-h" => store_usage(),
            path if !path.starts_with('-') && input.is_none() => input = Some(path.to_string()),
            _ => store_usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| store_usage());
    if mine_args.threads.is_some() && mine_args.algo != "parallel" {
        eprintln!("--threads requires --algo parallel");
        store_usage();
    }

    match sub.as_str() {
        "ingest" => {
            let input = input.unwrap_or_else(|| store_usage());
            let db = load_database(&input);
            let mut store = SequenceStore::open(&dir, cfg)
                .unwrap_or_else(|e| fail_store("cannot open store", &e));
            if mine_args.stats {
                print_recovery(&store);
            }
            let before = store.len();
            for row in db.rows() {
                store
                    .append(row.cid, row.sequence.clone())
                    .unwrap_or_else(|e| fail_store("append failed", &e));
            }
            let appended = store.len() - before;
            if do_compact {
                let report =
                    store.compact().unwrap_or_else(|e| fail_store("compaction failed", &e));
                eprintln!(
                    "# compacted {} segments into a {}-byte snapshot ({} rows, fingerprint {:#018x})",
                    report.folded_segments, report.snapshot_bytes, report.rows, report.fingerprint
                );
            }
            let total = store.len();
            store.close().unwrap_or_else(|e| fail_store("close failed", &e));
            eprintln!("# ingested {appended} sequences into {dir} ({total} total)");
            exit(0);
        }
        "compact" => {
            let mut store = open_existing(&dir, cfg);
            if mine_args.stats {
                print_recovery(&store);
            }
            let report = store.compact().unwrap_or_else(|e| fail_store("compaction failed", &e));
            store.close().unwrap_or_else(|e| fail_store("close failed", &e));
            eprintln!(
                "# compacted {} segments into a {}-byte snapshot ({} rows, fingerprint {:#018x})",
                report.folded_segments, report.snapshot_bytes, report.rows, report.fingerprint
            );
            exit(0);
        }
        "fsck" => {
            if !Path::new(&dir).is_dir() {
                eprintln!("no store at {dir}: not a directory");
                exit(1);
            }
            let report =
                fsck(&PathBuf::from(&dir)).unwrap_or_else(|e| fail_store("cannot audit store", &e));
            println!("{report}");
            exit(if report.is_recoverable() { 0 } else { 1 });
        }
        "mine" => {
            let store = open_existing(&dir, cfg);
            if mine_args.stats {
                print_recovery(&store);
            }
            if use_mmap {
                // Recovery already deleted a mirror whose fingerprint does
                // not match the snapshot; what remains to check is appends
                // replayed from the WAL *after* the last compaction.
                let live_fp = store.fingerprint();
                let flat_path = store.flat_file_path();
                store.close().unwrap_or_else(|e| fail_store("close failed", &e));
                let mirror_fp = match disc_miner::core::peek_flat_file_fingerprint(&flat_path) {
                    Ok(fp) => fp,
                    Err(e) => {
                        eprintln!(
                            "no usable flat mirror at {}: {e}\nrun `disc-mine store compact --dir {dir}` first",
                            flat_path.display()
                        );
                        exit(1);
                    }
                };
                if mirror_fp != live_fp {
                    eprintln!(
                        "flat mirror {} is stale (fingerprint {mirror_fp:#018x}, store {live_fp:#018x}); \
                         run `disc-mine store compact --dir {dir}` first",
                        flat_path.display()
                    );
                    exit(1);
                }
                let contents =
                    disc_miner::core::open_flat_file(&flat_path, disc_miner::core::Verify::Full)
                        .unwrap_or_else(|e| {
                            eprintln!("cannot open flat mirror {}: {e}", flat_path.display());
                            exit(1);
                        });
                run_mining_flat(&contents, &mine_args);
            } else {
                let view = store.view();
                store.close().unwrap_or_else(|e| fail_store("close failed", &e));
                run_mining(&view, &mine_args);
            }
            exit(0);
        }
        _ => store_usage(),
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: disc-mine serve --data-dir DIR [--addr HOST:PORT] [--threads N]\n\
         \t[--slice-ops N] [--checkpoint-every N] [--cache-entries N]\n\
         \t[--default-max-ops N]\n\
         \t[--max-connections N] [--queue-depth N] [--max-body-bytes N]\n\
         \t[--max-head-bytes N] [--read-timeout-ms N] [--write-timeout-ms N]\n\
         \t[--request-deadline-ms N]\n\
         \t[--rate-limit BURST/PER_SEC] [--max-concurrent-jobs N]\n\
         \t[--max-cumulative-ops N] [--chaos-seed SEED]\n\
         Starts the multi-tenant mining server. State (databases, job\n\
         checkpoints, results, manifest) persists under --data-dir; SIGTERM\n\
         drains gracefully — running jobs checkpoint at their next partition\n\
         boundary and a restarted server resumes them bit-identically.\n\
         Admission: a fixed pool of --max-connections handler threads drains\n\
         a --queue-depth accept queue; overflow is shed with 503 + a\n\
         load-computed Retry-After. Oversized requests get 413; stalled or\n\
         trickling clients get 408 — per-read at --read-timeout-ms, and\n\
         absolutely at --request-deadline-ms for the whole request, so a\n\
         byte-at-a-time slow-loris cannot renew its deadline forever.\n\
         Quota flags apply per tenant (the client-asserted tenant name —\n\
         a fairness mechanism for trusted tenants, not authentication) and\n\
         refuse with typed 429s. --chaos-seed wraps every connection in the\n\
         deterministic network-fault harness (testing only).\n\
         Default addr is 127.0.0.1:7031; port 0 picks a free port (printed)."
    );
    exit(2);
}

fn serve_main(argv: Vec<String>) -> ! {
    let mut cfg =
        disc_miner::server::ServerConfig { addr: "127.0.0.1:7031".into(), ..Default::default() };
    let mut data_dir: Option<String> = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| serve_usage())),
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| serve_usage()),
            "--threads" => {
                cfg.scheduler.threads =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--slice-ops" => {
                cfg.scheduler.slice_ops =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--checkpoint-every" => {
                cfg.scheduler.checkpoint_every =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--cache-entries" => {
                cfg.cache_entries =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--default-max-ops" => {
                cfg.default_max_ops =
                    Some(args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage()));
            }
            "--max-connections" => {
                cfg.limits.max_connections =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--queue-depth" => {
                cfg.limits.queue_depth =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--max-body-bytes" => {
                cfg.limits.max_body_bytes =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--max-head-bytes" => {
                cfg.limits.max_head_bytes =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
            }
            "--read-timeout-ms" => {
                let ms: u64 =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
                cfg.limits.read_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--write-timeout-ms" => {
                let ms: u64 =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
                cfg.limits.write_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--request-deadline-ms" => {
                let ms: u64 =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
                cfg.limits.request_deadline = std::time::Duration::from_millis(ms.max(1));
            }
            // BURST/PER_SEC, e.g. `5/2.5` = bursts of 5, 2.5 requests/s.
            "--rate-limit" => {
                let spec = args.next().unwrap_or_else(|| serve_usage());
                let (burst, per_sec) = spec.split_once('/').unwrap_or_else(|| serve_usage());
                cfg.scheduler.quotas.rate = Some(disc_miner::server::RateLimit {
                    burst: burst.parse().ok().unwrap_or_else(|| serve_usage()),
                    per_sec: per_sec.parse().ok().unwrap_or_else(|| serve_usage()),
                });
            }
            "--max-concurrent-jobs" => {
                cfg.scheduler.quotas.max_concurrent_jobs =
                    Some(args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage()));
            }
            "--max-cumulative-ops" => {
                cfg.scheduler.quotas.max_cumulative_ops =
                    Some(args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage()));
            }
            "--chaos-seed" => {
                let seed =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| serve_usage());
                cfg.chaos = Some(disc_miner::server::ChaosConfig::light(seed));
                eprintln!("disc-server: CHAOS HARNESS ACTIVE (seed {seed}) — testing only");
            }
            _ => serve_usage(),
        }
    }
    cfg.data_dir = PathBuf::from(data_dir.unwrap_or_else(|| serve_usage()));

    let server = disc_miner::server::Server::new(cfg);
    // Announce the bound address from a sidecar thread once run() binds —
    // scripted clients (CI, benches) parse this line to find a port-0 pick.
    let announce = server.clone();
    std::thread::spawn(move || loop {
        if let Some(addr) = announce.local_addr() {
            println!("disc-server listening on {addr}");
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    match server.run() {
        Ok(queued) => {
            eprintln!("disc-server drained; {} job(s) left resumable", queued.len());
            exit(0);
        }
        Err(e) => {
            eprintln!("disc-server failed: {e}");
            let transient = matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            );
            exit(if transient { EXIT_TRANSIENT } else { 1 });
        }
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("store") {
        store_main(argv.split_off(1));
    }
    if argv.first().map(String::as_str) == Some("pack") {
        pack_main(argv.split_off(1));
    }
    if argv.first().map(String::as_str) == Some("serve") {
        serve_main(argv.split_off(1));
    }
    let args = parse_args(argv);
    if is_flat_file(&args.path) {
        let contents =
            disc_miner::core::open_flat_file(Path::new(&args.path), disc_miner::core::Verify::Full)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {}: {e}", args.path);
                    exit(1);
                });
        run_mining_flat(&contents, &args);
        return;
    }
    let db = load_database(&args.path);
    run_mining(&db, &args);
}
