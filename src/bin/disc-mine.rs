//! `disc-mine` — command-line frequent-sequence mining.
//!
//! ```text
//! disc-mine <database.txt> --minsup 0.01 [--algo disc-all|dynamic|prefixspan|pseudo|gsp|spade|spam]
//!           [--min-length N] [--max-patterns N] [--stats]
//! ```
//!
//! The database format is one customer per line: `cid: (a, b)(c)(a, d)` —
//! items are lowercase letters or decimal numbers; `#` starts a comment.
//! Output: one pattern per line with its support, in comparative order.

use disc_miner::prelude::*;
use std::process::exit;

struct Args {
    path: String,
    minsup: MinSupport,
    algo: String,
    min_length: usize,
    max_patterns: usize,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: disc-mine <database.txt> [--minsup FRACTION | --delta COUNT]\n\
         \t[--algo disc-all|dynamic|prefixspan|pseudo|gsp|spade|spam|brute]\n\
         \t[--min-length N] [--max-patterns N] [--stats]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        path: String::new(),
        minsup: MinSupport::Fraction(0.01),
        algo: "disc-all".into(),
        min_length: 1,
        max_patterns: usize::MAX,
        stats: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--minsup" => {
                let v: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Fraction(v);
            }
            "--delta" => {
                let v: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
                out.minsup = MinSupport::Count(v);
            }
            "--algo" => out.algo = args.next().unwrap_or_else(|| usage()),
            "--min-length" => {
                out.min_length =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--max-patterns" => {
                out.max_patterns =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--stats" => out.stats = true,
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && out.path.is_empty() => out.path = path.to_string(),
            _ => usage(),
        }
    }
    if out.path.is_empty() {
        usage();
    }
    out
}

fn miner_by_name(name: &str) -> Box<dyn SequentialMiner> {
    match name {
        "disc-all" => Box::new(DiscAll::default()),
        "dynamic" => Box::new(DynamicDiscAll::default()),
        "prefixspan" => Box::new(PrefixSpan::default()),
        "pseudo" => Box::new(PseudoPrefixSpan::default()),
        "gsp" => Box::new(Gsp::default()),
        "spade" => Box::new(Spade::default()),
        "spam" => Box::new(Spam::default()),
        "brute" => Box::new(BruteForce::default()),
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let bytes = match std::fs::read(&args.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.path);
            exit(1);
        }
    };
    // Accept both formats disc-gen writes: the text line format and the
    // compact DSCDB1 binary (detected by its magic).
    let db = if bytes.starts_with(b"DSCDB1\n") {
        match disc_miner::core::decode_database(&bytes) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot decode {}: {e}", args.path);
                exit(1);
            }
        }
    } else {
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("cannot parse {}: neither DSCDB1 binary nor UTF-8 text", args.path);
                exit(1);
            }
        };
        match SequenceDatabase::from_text(&text) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", args.path);
                exit(1);
            }
        }
    };
    if args.stats {
        let s = db.stats();
        eprintln!(
            "# {} customers, {:.2} transactions/customer, {:.2} items/transaction, {} distinct items",
            s.customers, s.avg_transactions, s.avg_items_per_transaction, s.distinct_items
        );
    }

    let miner = miner_by_name(&args.algo);
    let resolved = args.minsup.resolve(db.len());
    if resolved <= 2 && db.len() > 100 {
        eprintln!(
            "# warning: threshold resolves to δ = {resolved}; on non-trivial data the \
             frequent set (and runtime) grows exponentially at such low support"
        );
    }
    let start = std::time::Instant::now();
    // Sparse item-id spaces would make the miners' dense per-item arrays
    // huge; compact ids transparently and translate the patterns back.
    // Analyze first: the common dense case then never copies the database.
    let mapping = disc_miner::core::ItemMapping::analyze(&db);
    let result = if mapping.is_worthwhile() {
        if args.stats {
            eprintln!("# compacted {} distinct items onto 0..{}", mapping.len(), mapping.len());
        }
        let compacted = mapping.remap_database(&db);
        mapping.restore_result(&miner.mine(&compacted, args.minsup))
    } else {
        miner.mine(&db, args.minsup)
    };
    if args.stats {
        eprintln!(
            "# {}: {} frequent sequences (max length {}) in {:.3?}",
            miner.name(),
            result.len(),
            result.max_length(),
            start.elapsed()
        );
    }

    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (pattern, support) in
        result.iter().filter(|(p, _)| p.length() >= args.min_length).take(args.max_patterns)
    {
        if writeln!(lock, "{support}\t{pattern}").is_err() {
            break; // downstream pipe closed (e.g. `| head`)
        }
    }
}
