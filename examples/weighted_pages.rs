//! Weighted traversal mining — the paper's §5 future-work scenario made
//! concrete: "when finding the traversal patterns in the WWW, different
//! pages may have a variety of importance, e.g. page weights … a pattern
//! depends on not only the number of its occurrences but also its weight."
//!
//! Here the weight lives on the *visitor*: sessions from paying customers
//! weigh more than anonymous ones, so a path that a handful of heavy
//! accounts share outranks a path thousands of drive-by visitors take.
//! Uniform weights recover ordinary mining (asserted at the end).
//!
//! ```text
//! cargo run --release --example weighted_pages [sessions]
//! ```

use disc_miner::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGES: &[&str] = &[
    "/home",
    "/features",
    "/docs",
    "/pricing",
    "/enterprise",
    "/contact-sales",
    "/signup",
    "/blog",
    "/status",
];

fn page(i: u32) -> Item {
    Item(i)
}

fn render(seq: &Sequence) -> String {
    seq.itemsets()
        .iter()
        .map(|set| PAGES[set.min_item().id() as usize])
        .collect::<Vec<_>>()
        .join(" → ")
}

fn main() {
    let sessions: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let mut rng = StdRng::seed_from_u64(99);

    // Two populations: a small cohort of enterprise evaluators (weight 50)
    // following /home → /enterprise → /contact-sales, and a large crowd of
    // casual visitors (weight 1) bouncing /home → /blog.
    let mut rows: Vec<(Sequence, u64)> = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let enterprise = i % 40 == 0; // 2.5% of sessions
        let mut clicks: Vec<u32> = Vec::new();
        if enterprise {
            for &p in &[0u32, 4, 5] {
                clicks.push(p);
                if rng.gen_bool(0.3) {
                    clicks.push(rng.gen_range(0..PAGES.len() as u32));
                }
            }
        } else {
            clicks.push(0);
            clicks.push(7);
            for _ in 0..rng.gen_range(0..3) {
                clicks.push(rng.gen_range(0..PAGES.len() as u32));
            }
        }
        let seq = Sequence::new(clicks.into_iter().map(|p| Itemset::single(page(p))));
        rows.push((seq, if enterprise { 50 } else { 1 }));
    }
    let wdb = WeightedDatabase::from_weighted(rows);
    println!(
        "{} sessions, total weight {} (enterprise sessions weigh 50×)",
        wdb.database().len(),
        wdb.total_weight()
    );

    // Threshold: 20% of total weight.
    let delta_w = wdb.total_weight() / 5;
    let weighted = WeightedDisc::default().mine(&wdb, delta_w);
    println!("\nweighted mining (δw = {delta_w}):");
    let mut paths: Vec<(&Sequence, u64)> =
        weighted.iter().filter(|(p, _)| p.length() >= 2).collect();
    paths.sort_by_key(|&(_, support)| std::cmp::Reverse(support));
    for (p, w) in paths.iter().take(8) {
        println!(
            "  weight {:>6} ({:4.1}%)  {}",
            w,
            100.0 * *w as f64 / wdb.total_weight() as f64,
            render(p)
        );
    }

    let enterprise_path = Sequence::new([0u32, 4, 5].map(|p| Itemset::single(page(p))));
    println!(
        "\nenterprise path {}: weighted support {:?}, raw session support {}",
        render(&enterprise_path),
        weighted.support_of(&enterprise_path),
        disc_miner::core::support_count(wdb.database(), &enterprise_path),
    );

    // Unweighted mining at 20% of session count misses it entirely.
    let unweighted = DiscAll::default().mine(wdb.database(), MinSupport::Fraction(0.2));
    println!(
        "unweighted mining at 20% support finds it: {}",
        unweighted.contains_pattern(&enterprise_path)
    );

    // Sanity: uniform weights ≡ ordinary mining (same absolute δ on both
    // sides — fractional resolution could round differently).
    let delta = (sessions / 5).max(1) as u64;
    let uniform = WeightedDatabase::uniform(wdb.database().clone());
    let a = WeightedDisc::default().mine(&uniform, delta);
    let b = DiscAll::default().mine(wdb.database(), MinSupport::Count(delta));
    assert!(a.diff(&b).is_empty());
    println!("uniform-weight cross-check ✓");
}
