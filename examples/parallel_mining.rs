//! Parallel mining: the sharded DISC-all miner on a thread pool, with the
//! determinism contract checked live — every thread count yields a result
//! bit-identical to sequential DISC-all — plus a deadline-guarded parallel
//! run showing that the guard rails span workers.
//!
//! ```text
//! cargo run --release --example parallel_mining
//! ```

use disc_miner::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // A Quest-style workload with enough first-level partitions (one per
    // frequent item) to keep several workers busy.
    let db = QuestConfig::paper_table11()
        .with_ncust(2000)
        .with_nitems(80)
        .with_pools(80, 160)
        .with_slen(8.0)
        .with_seed(17)
        .generate();
    let stats = db.stats();
    println!(
        "workload: {} customers, {:.1} transactions/customer, {} distinct items",
        stats.customers, stats.avg_transactions, stats.distinct_items
    );
    let threshold = MinSupport::Fraction(0.05);

    // The sequential reference every parallel run must reproduce exactly.
    let start = Instant::now();
    let reference = DiscAll::default().mine(&db, threshold);
    let sequential = start.elapsed();
    println!(
        "\nsequential DISC-all: {} patterns (max length {}) in {sequential:.2?}\n",
        reference.len(),
        reference.max_length()
    );

    // The same mining job, sharded one first-level partition per pool task.
    // `ParallelExecutor::new()` sizes the pool by available_parallelism;
    // here the count is swept explicitly.
    println!("| threads | seconds | speedup | identical to sequential |");
    println!("|---|---|---|---|");
    for threads in [1, 2, 4, 8] {
        let miner = ParallelDiscAll::with_threads(threads);
        let start = Instant::now();
        let result = miner.mine(&db, threshold);
        let elapsed = start.elapsed();
        let identical = result.diff(&reference).is_empty();
        println!(
            "| {threads} | {:.3} | {:.2}× | {} |",
            elapsed.as_secs_f64(),
            sequential.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "×{threads} violated the determinism contract");
    }
    println!("\nthis machine reports {} available core(s)", ParallelExecutor::new().threads());

    // Guard rails span the pool: one deadline, observed by every worker.
    // The partial result is still sound — each reported pattern carries its
    // exact support.
    println!("\nparallel run under a 20 ms deadline:");
    let guard = MineGuard::new(
        CancelToken::new(),
        ResourceBudget::unlimited().with_deadline(Duration::from_millis(20)),
    );
    let run =
        ParallelDiscAll::with_threads(4).mine_guarded(&db, MinSupport::Fraction(0.01), &guard);
    let status = match &run.outcome {
        MineOutcome::Complete => "complete".to_string(),
        MineOutcome::Partial { reason } => format!("partial ({reason})"),
    };
    println!(
        "  {status}: {} patterns, {} ops, in {:.1?}",
        run.result.len(),
        run.stats.ops,
        run.stats.elapsed
    );
    for (pattern, support) in run.result.iter().take(3) {
        println!("  e.g. {pattern}  [support {support}]");
    }
}
