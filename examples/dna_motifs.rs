//! Ordered motif discovery in DNA reads — the paper's conclusion points at
//! DNA sequence analysis as a DISC application.
//!
//! Each "read" is a sequence of single-nucleotide transactions over the
//! 4-letter alphabet {A, C, G, T}. A gapped regulatory signature
//! (`TATA … GC … CAAT`) is planted into half of the reads; the rest is
//! uniform noise. Subsequence semantics (gaps allowed) is exactly what makes
//! the signature minable even though the spacers vary.
//!
//! ```text
//! cargo run --release --example dna_motifs [reads]
//! ```

use disc_miner::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

fn base_item(c: char) -> Item {
    Item(BASES.iter().position(|&b| b == c).expect("ACGT") as u32)
}

fn read_to_sequence(read: &str) -> Sequence {
    Sequence::new(read.chars().map(|c| Itemset::single(base_item(c))))
}

fn render(seq: &Sequence) -> String {
    seq.itemsets().iter().map(|set| BASES[set.min_item().id() as usize]).collect()
}

fn synthesize(reads: usize, seed: u64) -> (SequenceDatabase, &'static str) {
    const SIGNATURE: &str = "TATAGCCAAT"; // planted as a gapped subsequence
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(reads);
    for i in 0..reads {
        let mut read = String::new();
        if i % 2 == 0 {
            // Planted: signature bases with random spacers between them.
            for c in SIGNATURE.chars() {
                for _ in 0..rng.gen_range(0..3) {
                    read.push(BASES[rng.gen_range(0..4)]);
                }
                read.push(c);
            }
        } else {
            for _ in 0..SIGNATURE.len() * 2 {
                read.push(BASES[rng.gen_range(0..4)]);
            }
        }
        rows.push(read_to_sequence(&read));
    }
    (SequenceDatabase::from_sequences(rows), SIGNATURE)
}

fn main() {
    let reads: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(400);
    let (db, signature) = synthesize(reads, 11);
    println!(
        "{} reads, ~{} bases each; planted gapped signature {} in half of them",
        db.len(),
        signature.len() * 2,
        signature
    );

    // 45%: just under the planting rate, far above noise.
    let result = DiscAll::default().mine(&db, MinSupport::Fraction(0.45));
    println!("{} frequent gapped motifs at 45% support", result.len());
    println!("motifs by length: {:?}", result.length_histogram());

    let planted = read_to_sequence(signature);
    match result.support_of(&planted) {
        Some(s) => println!(
            "\nplanted signature recovered: {} in {:.1}% of reads",
            signature,
            100.0 * s as f64 / db.len() as f64
        ),
        None => println!("\nplanted signature NOT recovered — threshold too high?"),
    }

    // The maximal motifs: frequent motifs contained in no longer one.
    let maximal = result.maximal_patterns();
    let longest = maximal.iter().map(|(p, _)| p.length()).max().unwrap_or(0);
    println!("\nmaximal motifs of length {longest}:");
    for (p, s) in maximal.iter().filter(|(p, _)| p.length() == longest) {
        println!("  {}  [{:.1}%]", render(p), 100.0 * *s as f64 / db.len() as f64);
    }
}
