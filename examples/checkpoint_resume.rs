//! Checkpoint/resume: durable mining that survives budget exhaustion,
//! simulated crashes mid-snapshot-write, and on-disk corruption — always
//! finishing with a result bit-identical to an uninterrupted run.
//!
//! ```text
//! cargo run --example checkpoint_resume
//! ```

use disc_miner::core::{read_snapshot, CheckpointCrash, FaultPlan};
use disc_miner::prelude::*;
use std::fs;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("disc-ckpt-example-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn main() {
    // A Quest-style workload with enough first-level partitions that a
    // starved run stops somewhere in the middle.
    let db = QuestConfig::paper_table11()
        .with_ncust(400)
        .with_nitems(60)
        .with_pools(60, 120)
        .with_seed(7)
        .generate();
    let minsup = MinSupport::Fraction(0.10);
    let reference = DiscAll::default().mine(&db, minsup);
    println!(
        "workload: {} customers; uninterrupted run finds {} patterns\n",
        db.len(),
        reference.len()
    );

    // Act 1: a budget-starved run aborts mid-mine, but every completed
    // partition boundary was made durable on the way.
    println!("act 1: run under a tight ops budget, checkpointing every boundary");
    let budget_dir = fresh_dir("budget");
    let miner = Resumable::new(DiscAll::default(), &budget_dir);
    let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited().with_max_ops(2_000))
        .with_checkpoint_interval(1);
    let run = miner.mine_guarded(&db, minsup, &guard);
    let stats = miner.last_stats();
    println!(
        "  outcome: {:?} — {} patterns so far, {} snapshot writes ({} bytes)",
        run.outcome,
        run.result.len(),
        stats.writes,
        stats.bytes
    );
    assert!(!run.outcome.is_complete(), "expected the budget to fire");
    let checkpoint = run.checkpoint.clone().expect("abort left a durable checkpoint");
    println!("  checkpoint recorded in the outcome: {}", checkpoint.display());

    // Act 2: explicit resume from that file completes bit-identically.
    println!("\nact 2: resume from the snapshot with an unlimited budget");
    let resumed = miner
        .resume_from(&checkpoint, &db, minsup, &MineGuard::unlimited())
        .expect("a snapshot this process just wrote is valid");
    assert!(resumed.outcome.is_complete());
    assert!(resumed.result.diff(&reference).is_empty());
    println!("  {} patterns — bit-identical to the uninterrupted run ✓", resumed.result.len());

    // Act 3: a crash injected *inside* the snapshot writer. The process
    // "dies" (a panic the guard contains) while the second snapshot's temp
    // file is half-written; the atomic-rename protocol means the previous
    // snapshot is untouched, so resume still works.
    println!("\nact 3: kill the process mid-snapshot-write, then resume");
    let dir = fresh_dir("crash");
    let miner = Resumable::new(DiscAll::default(), &dir);
    let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited())
        .with_checkpoint_interval(1)
        .with_fault(FaultPlan::crash_at_snapshot_write(2, CheckpointCrash::TornTempWrite));
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the demo output clean
    let run = miner.mine_guarded(&db, minsup, &guard);
    std::panic::set_hook(prev_hook);
    println!("  outcome: {:?}", run.outcome);
    assert_eq!(run.outcome, MineOutcome::Partial { reason: AbortReason::Panicked });
    let survivor =
        read_snapshot(&miner.checkpoint_path()).expect("write 1 survives the torn write 2");
    println!(
        "  surviving snapshot: {} partitions done, {} patterns",
        survivor.done.len(),
        survivor.patterns.len()
    );
    let resumed = miner.mine_guarded(&db, minsup, &MineGuard::unlimited());
    assert!(resumed.outcome.is_complete());
    assert!(resumed.result.diff(&reference).is_empty());
    println!("  resumed to {} patterns — bit-identical ✓", resumed.result.len());

    // Act 4: corruption on disk. Explicit resume rejects it with a typed
    // error; auto-resume ignores it and atomically replaces it.
    println!("\nact 4: flip a byte in the snapshot file");
    let path = miner.checkpoint_path();
    let mut bytes = fs::read(&path).expect("snapshot file exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("rewrite corrupted snapshot");
    let err = miner
        .resume_from(&path, &db, minsup, &MineGuard::unlimited())
        .expect_err("corruption must be detected");
    println!("  explicit resume rejects it: {err}");
    let run = miner.mine_guarded(&db, minsup, &MineGuard::unlimited());
    assert!(run.outcome.is_complete());
    assert!(run.result.diff(&reference).is_empty());
    println!("  auto-resume starts fresh and still matches: {} patterns ✓", run.result.len());

    let _ = fs::remove_dir_all(budget_dir);
    let _ = fs::remove_dir_all(dir);
}
