//! Web navigation patterns — the paper's conclusion names WWW traversal
//! pattern mining as a natural application of the DISC strategy.
//!
//! Sessions are single-item transactions (one page per click), synthesized
//! from a tiny Markov model of a documentation site with a few "canonical
//! journeys" planted. The miner should surface those journeys; the example
//! then asks a product question: which multi-step paths end at `/signup`?
//!
//! ```text
//! cargo run --release --example weblog_navigation [sessions]
//! ```

use disc_miner::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGES: &[&str] = &[
    "/home",            // 0
    "/docs",            // 1
    "/docs/install",    // 2
    "/docs/quickstart", // 3
    "/docs/api",        // 4
    "/blog",            // 5
    "/pricing",         // 6
    "/signup",          // 7
    "/support",         // 8
    "/download",        // 9
];

/// Canonical journeys planted into the traffic (page indices).
const JOURNEYS: &[&[u32]] = &[
    &[0, 1, 2, 3], // home → docs → install → quickstart
    &[0, 6, 7],    // home → pricing → signup
    &[5, 0, 6, 7], // blog → home → pricing → signup
    &[1, 4, 8],    // docs → api → support
    &[0, 9],       // home → download
];

fn synthesize(sessions: usize, seed: u64) -> SequenceDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let mut clicks: Vec<u32> = Vec::new();
        // 1–3 journeys per session, with noise clicks sprinkled in.
        for _ in 0..rng.gen_range(1..=3) {
            if rng.gen_bool(0.7) {
                let journey = JOURNEYS[rng.gen_range(0..JOURNEYS.len())];
                for &page in journey {
                    if rng.gen_bool(0.9) {
                        clicks.push(page);
                    }
                    if rng.gen_bool(0.25) {
                        clicks.push(rng.gen_range(0..PAGES.len() as u32));
                    }
                }
            } else {
                for _ in 0..rng.gen_range(2..6) {
                    clicks.push(rng.gen_range(0..PAGES.len() as u32));
                }
            }
        }
        let seq = Sequence::new(clicks.into_iter().map(|p| Itemset::single(Item(p))));
        rows.push(seq);
    }
    SequenceDatabase::from_sequences(rows)
}

fn render(seq: &Sequence) -> String {
    seq.itemsets()
        .iter()
        .map(|set| PAGES[set.min_item().id() as usize])
        .collect::<Vec<_>>()
        .join(" → ")
}

fn main() {
    let sessions: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let db = synthesize(sessions, 7);
    println!("{} sessions over {} pages", db.len(), PAGES.len());

    let result = DynamicDiscAll::default().mine(&db, MinSupport::Fraction(0.05));
    println!("Dynamic DISC-all: {} frequent navigation patterns at 5% support", result.len());

    // The planted journeys must surface.
    println!("\nplanted journeys recovered:");
    for journey in JOURNEYS {
        let pattern = Sequence::new(journey.iter().map(|&p| Itemset::single(Item(p))));
        match result.support_of(&pattern) {
            Some(s) => {
                println!("  {:5.1}%  {}", 100.0 * s as f64 / db.len() as f64, render(&pattern))
            }
            None => println!("  (below threshold) {}", render(&pattern)),
        }
    }

    // Product question: the frequent multi-step paths that END at /signup.
    let signup = Item(7);
    let mut funnels: Vec<(&Sequence, u64)> = result
        .iter()
        .filter(|(p, _)| p.length() >= 2 && p.last_flat_item() == Some(signup))
        .collect();
    funnels.sort_by_key(|&(_, support)| std::cmp::Reverse(support));
    println!("\nfrequent funnels into /signup:");
    for (pattern, support) in funnels.iter().take(8) {
        println!("  {:5.1}%  {}", 100.0 * *support as f64 / db.len() as f64, render(pattern));
    }
}
