//! Time-constrained mining with GSP's generalizations: sliding windows and
//! min/max gaps (the constrained-mining line of work the paper's related
//! work cites).
//!
//! Scenario: subscription churn analysis. We want purchase sequences where
//! the steps happen *within two visits of each other* (max-gap) — a loose
//! "a then much later b" association is not actionable — and where a
//! "basket" may be assembled from two adjacent visits (window 1), because
//! customers often split one shopping intent across a weekend.
//!
//! ```text
//! cargo run --release --example constrained_sessions [ncust]
//! ```

use disc_miner::core::constraints::{support_count_with, TimeConstraints};
use disc_miner::prelude::*;

fn main() {
    let ncust: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(800);
    let db = QuestConfig::paper_table11()
        .with_ncust(ncust)
        .with_nitems(60)
        .with_pools(120, 240)
        .with_slen(8.0)
        .with_seed(77)
        .generate();
    println!("{} customers, {:.1} visits each", db.len(), db.stats().avg_transactions);

    let minsup = MinSupport::Fraction(0.05);

    // Unconstrained baseline.
    let plain = Gsp::default().mine(&db, minsup);

    // "Actionable" patterns: consecutive steps at most 2 visits apart.
    let tight = TimeConstraints { max_gap: Some(2), ..Default::default() };
    let constrained = Gsp::with_constraints(tight).mine(&db, minsup);

    println!(
        "\nunconstrained GSP: {} patterns; max-gap 2: {} patterns",
        plain.len(),
        constrained.len()
    );

    // Patterns that survive only because of distant co-occurrence.
    let mut dropped: Vec<(&Sequence, u64)> =
        plain.iter().filter(|(p, _)| p.length() >= 2 && !constrained.contains_pattern(p)).collect();
    dropped.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\npatterns dropped by the gap constraint (distant-only associations):");
    for (p, s) in dropped.iter().take(8) {
        let tight_support = support_count_with(&db, p, &tight);
        println!("  {p}  [plain {s}, within-2-visits {tight_support}]");
    }

    // Windowed baskets: treat two adjacent visits as one intent.
    let weekend = TimeConstraints { window: Some(1), ..Default::default() };
    let windowed = Gsp::with_constraints(weekend).mine(&db, MinSupport::Fraction(0.08));
    let new_baskets: Vec<(&Sequence, u64)> = windowed
        .iter()
        .filter(|(p, _)| {
            p.itemsets().iter().any(|set| set.len() >= 2) && !plain.contains_pattern(p)
        })
        .collect();
    println!(
        "\nwindow-1 mining finds {} basket patterns invisible to single-visit semantics:",
        new_baskets.len()
    );
    for (p, s) in new_baskets.iter().take(8) {
        println!("  {p}  [windowed support {s}]");
    }
}
