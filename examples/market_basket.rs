//! Market-basket analysis — the application the paper's introduction
//! motivates: customers buy itemsets over time; the retailer wants the
//! purchase sequences that recur across customers.
//!
//! The workload comes from the Quest-style generator at a laptop-friendly
//! scale of the paper's Table 11 setting; a readable product catalog is
//! mapped over the item ids for presentation.
//!
//! ```text
//! cargo run --release --example market_basket [ncust] [minsup]
//! ```

use disc_miner::prelude::*;
use std::time::Instant;

/// A small catalog so patterns read like shopping behaviour.
const CATALOG: &[&str] = &[
    "espresso",
    "croissant",
    "oat-milk",
    "cereal",
    "bananas",
    "yogurt",
    "pasta",
    "passata",
    "parmesan",
    "basil",
    "chicken",
    "rice",
    "soy-sauce",
    "ginger",
    "tortillas",
    "beans",
    "salsa",
    "avocado",
    "lime",
    "beer",
    "chocolate",
    "strawberries",
    "cream",
    "wine",
    "baguette",
    "brie",
    "grapes",
    "olives",
    "crackers",
    "honey",
    "tea",
    "lemons",
];

fn label(item: Item) -> String {
    let id = item.id() as usize;
    if id < CATALOG.len() {
        CATALOG[id].to_string()
    } else {
        format!("sku-{id}")
    }
}

fn render(seq: &Sequence) -> String {
    seq.itemsets()
        .iter()
        .map(|set| {
            let items: Vec<String> = set.iter().map(label).collect();
            format!("[{}]", items.join(" + "))
        })
        .collect::<Vec<_>>()
        .join(" → ")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ncust: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let minsup: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);

    let db = QuestConfig::paper_table11()
        .with_ncust(ncust)
        .with_nitems(CATALOG.len() as u32)
        .with_pools(200, 400)
        .with_slen(6.0)
        .with_seed(2024)
        .generate();
    let stats = db.stats();
    println!(
        "generated {} shopping histories ({:.1} visits each, {:.1} items/visit)",
        stats.customers, stats.avg_transactions, stats.avg_items_per_transaction
    );

    let start = Instant::now();
    let result = DiscAll::default().mine(&db, MinSupport::Fraction(minsup));
    let elapsed = start.elapsed();
    println!(
        "DISC-all: {} frequent purchase patterns at {:.2}% support in {:.2?}",
        result.len(),
        minsup * 100.0,
        elapsed
    );
    println!("pattern count by length: {:?}", result.length_histogram());

    // Show the strongest multi-visit patterns: supports of length ≥ 2,
    // highest support first.
    let mut multi: Vec<(&Sequence, u64)> = result.iter().filter(|(p, _)| p.length() >= 2).collect();
    multi.sort_by_key(|&(_, support)| std::cmp::Reverse(support));
    println!("\ntop recurring purchase sequences:");
    for (pattern, support) in multi.iter().take(12) {
        let pct = 100.0 * *support as f64 / db.len() as f64;
        println!("  {:5.1}%  {}", pct, render(pattern));
    }

    // The longest habits found.
    if let Some(max) = multi.iter().map(|(p, _)| p.length()).max() {
        println!("\nlongest habit(s) span {max} purchases:");
        for (pattern, support) in multi.iter().filter(|(p, _)| p.length() == max) {
            println!("  {} customers: {}", support, render(pattern));
        }
    }
}
