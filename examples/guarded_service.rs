//! Guarded service: mining as an interactive backend would run it — every
//! request under a deadline, cancellable from another thread, and protected
//! by a fallback chain when a miner misbehaves.
//!
//! ```text
//! cargo run --example guarded_service
//! ```

use disc_miner::core::FaultPlan;
use disc_miner::prelude::*;
use std::time::Duration;

/// The per-request deadline an interactive service might enforce.
const REQUEST_DEADLINE: Duration = Duration::from_millis(50);

fn print_stats(label: &str, outcome: &MineOutcome, stats: &GuardStats, patterns: usize) {
    let status = match outcome {
        MineOutcome::Complete => "complete".to_string(),
        MineOutcome::Partial { reason } => format!("partial ({reason})"),
    };
    println!(
        "  {label:<18} {status:<28} {patterns:>5} patterns  {:>9} ops  {:>5} checks  {:.1?}",
        stats.ops, stats.checkpoints, stats.elapsed
    );
}

fn main() {
    // A Quest-style workload large enough that mining it exhaustively at a
    // low threshold takes much longer than the request deadline.
    let db = QuestConfig::paper_table11()
        .with_ncust(1500)
        .with_nitems(80)
        .with_pools(80, 160)
        .with_slen(10.0)
        .with_seed(9)
        .generate();
    let stats = db.stats();
    println!(
        "workload: {} customers, {:.1} transactions/customer, {} distinct items\n",
        stats.customers, stats.avg_transactions, stats.distinct_items
    );

    // Request 1: a comfortable threshold finishes well inside the deadline.
    println!("request 1: δ = 50% under a {REQUEST_DEADLINE:?} deadline");
    let guard = MineGuard::new(
        CancelToken::new(),
        ResourceBudget::unlimited().with_deadline(REQUEST_DEADLINE),
    );
    let run = DiscAll::default().mine_guarded(&db, MinSupport::Fraction(0.5), &guard);
    print_stats("DISC-all", &run.outcome, &run.stats, run.result.len());

    // Request 2: a greedy threshold blows the deadline; the service still
    // answers in bounded time with the sound prefix of the frequent set.
    println!("\nrequest 2: δ = 2% under the same deadline (overruns by design)");
    let guard = MineGuard::new(
        CancelToken::new(),
        ResourceBudget::unlimited().with_deadline(REQUEST_DEADLINE),
    );
    let run = DiscAll::default().mine_guarded(&db, MinSupport::Fraction(0.02), &guard);
    print_stats("DISC-all", &run.outcome, &run.stats, run.result.len());
    assert!(!run.outcome.is_complete(), "expected the deadline to fire");

    // Request 3: the client hangs up mid-flight — another thread cancels the
    // token and the miner stops at its next checkpoint.
    println!("\nrequest 3: δ = 2%, no deadline, client cancels after 10 ms");
    let token = CancelToken::new();
    let guard = MineGuard::new(token.clone(), ResourceBudget::unlimited());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
    });
    let run = DynamicDiscAll::default().mine_guarded(&db, MinSupport::Fraction(0.02), &guard);
    canceller.join().expect("canceller thread");
    print_stats("Dynamic DISC-all", &run.outcome, &run.stats, run.result.len());

    // Request 4: a fallback chain survives a crashing first stage. The
    // injected fault panics Dynamic DISC-all at its 40th checkpoint;
    // PrefixSpan picks the request up and completes it.
    println!("\nrequest 4: fallback chain with a fault injected into stage 1");
    let chain = FallbackMiner::new(vec![
        Box::new(DynamicDiscAll::default()),
        Box::new(PrefixSpan::default()),
    ]);
    println!("  chain: {}", chain.name());
    let guard = MineGuard::new(CancelToken::new(), ResourceBudget::unlimited())
        .with_checkpoint_interval(1)
        .with_fault(FaultPlan::panic_at(40));
    // The guard catches the panic; silence the default hook so the injected
    // crash doesn't splat a backtrace over the demo output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (run, reports) = chain.run(&db, MinSupport::Fraction(0.35), &guard);
    std::panic::set_hook(prev_hook);
    for report in &reports {
        print_stats(&report.name, &report.outcome, &report.stats, report.stats.patterns);
    }
    assert!(run.outcome.is_complete(), "the fallback stage completes the request");

    let reference = PrefixSpan::default().mine(&db, MinSupport::Fraction(0.35));
    assert!(run.result.diff(&reference).is_empty());
    println!("\nfallback result matches a clean PrefixSpan run: {} patterns ✓", run.result.len());
}
