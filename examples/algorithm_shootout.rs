//! A miniature of the paper's evaluation: race every miner on one
//! Quest-generated workload, verify they agree, and print a Figure-9-style
//! table of runtimes across support thresholds.
//!
//! ```text
//! cargo run --release --example algorithm_shootout [ncust] [seed]
//! ```

use disc_miner::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let ncust: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_500);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let db = QuestConfig::paper_table11()
        .with_ncust(ncust)
        .with_nitems(200)
        .with_pools(500, 1000)
        .with_seed(seed)
        .generate();
    let stats = db.stats();
    println!(
        "workload: {} customers × {:.1} transactions × {:.1} items (seed {seed})",
        stats.customers, stats.avg_transactions, stats.avg_items_per_transaction
    );

    let thresholds = [0.04, 0.02, 0.01];
    let miners: Vec<Box<dyn SequentialMiner>> = vec![
        Box::new(DiscAll::default()),
        Box::new(DynamicDiscAll::default()),
        Box::new(PrefixSpan::default()),
        Box::new(PseudoPrefixSpan::default()),
        Box::new(Spade::default()),
        Box::new(Spam::default()),
        // GSP is omitted by default: at these sizes its containment scans
        // dominate the example's runtime. Uncomment to include it.
        // Box::new(Gsp::default()),
    ];

    print!("{:<18}", "minsup");
    for t in thresholds {
        print!("{:>12}", format!("{:.1}%", t * 100.0));
    }
    println!("{:>12}", "agree?");

    let mut references: Vec<Option<MiningResult>> = vec![None; thresholds.len()];
    for miner in &miners {
        print!("{:<18}", miner.name());
        let mut all_agree = true;
        for (i, &t) in thresholds.iter().enumerate() {
            let start = Instant::now();
            let result = miner.mine(&db, MinSupport::Fraction(t));
            let elapsed = start.elapsed();
            print!("{:>12}", format!("{:.0?}", elapsed));
            match &references[i] {
                None => references[i] = Some(result),
                Some(reference) => {
                    if !result.diff(reference).is_empty() {
                        all_agree = false;
                    }
                }
            }
        }
        println!("{:>12}", if all_agree { "✓" } else { "✗ MISMATCH" });
    }

    for (i, &t) in thresholds.iter().enumerate() {
        if let Some(r) = &references[i] {
            println!(
                "minsup {:>5.1}%: {} frequent sequences, longest {}",
                t * 100.0,
                r.len(),
                r.max_length()
            );
        }
    }
}
