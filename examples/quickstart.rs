//! Quickstart: mine the paper's own example database (Table 1) with
//! DISC-all and print every frequent sequence.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use disc_miner::prelude::*;

fn main() {
    // Table 1 of the paper: four customers, items a–h.
    let db = SequenceDatabase::from_parsed(&[
        "(a,e,g)(b)(h)(f)(c)(b,f)",
        "(b)(d,f)(e)",
        "(b,f,g)",
        "(f)(a,g)(b,f,h)(b,f)",
    ])
    .expect("literal database parses");

    let stats = db.stats();
    println!(
        "database: {} customers, {:.1} transactions/customer, {} distinct items",
        stats.customers, stats.avg_transactions, stats.distinct_items
    );

    // A sequence is frequent when at least δ = 2 customers contain it.
    let delta = MinSupport::Count(2);
    let result = DiscAll::default().mine(&db, delta);

    println!("\n{} frequent sequences at δ = 2:", result.len());
    for k in 1..=result.max_length() {
        let of_k = result.of_length(k);
        println!("  -- length {k} ({} patterns)", of_k.len());
        for (pattern, support) in of_k {
            println!("     {pattern}  [support {support}]");
        }
    }

    // Every other miner in the workspace returns the same answer.
    for miner in disc_miner::all_miners() {
        let other = miner.mine(&db, delta);
        assert!(other.diff(&result).is_empty(), "{} disagrees", miner.name());
    }
    println!("\nall {} miners agree ✓", disc_miner::all_miners().len());
}
